//! MHIST histograms in the paper's split-tree representation (§3.3.2).
//!
//! An MHIST histogram is a hierarchical binary partitioning of the data
//! space. Poosala & Ioannidis stored each `n`-dimensional bucket
//! explicitly (`2n + 1` numbers per bucket); the paper's key observation
//! is that the partitioning itself is a binary tree, so it suffices to
//! store, per internal node, the split dimension and split value, and per
//! leaf the bucket frequency — `3b − 2` numbers for `b` buckets.
//!
//! [`SplitTree`] is that representation. Its workhorse query is
//! [`SplitTree::mass_in_box`]: the estimated frequency mass inside a
//! conjunctive range box under intra-bucket uniformity, which serves
//! range-selectivity estimation directly and supplies the weights `w` of
//! the paper's `project` (Fig. 4) and `product` (Fig. 5) operators.

mod build;
mod index;
mod ops;

pub use build::MhistBuilder;
pub use index::{IndexLayout, TreeIndex, SPARSE_OCCUPANCY_THRESHOLD};

use dbhist_distribution::{AttrId, AttrSet};

use crate::bbox::BoundingBox;

/// Index of a node within a [`SplitTree`] arena.
pub type NodeId = u32;

/// A node of a split tree.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Node {
    /// An internal split: values `< split` of `attr` go left, values
    /// `≥ split` go right.
    Internal {
        /// The split dimension.
        attr: AttrId,
        /// The split value.
        split: u32,
        /// Left child (values `< split`).
        left: NodeId,
        /// Right child (values `≥ split`).
        right: NodeId,
    },
    /// A bucket holding a frequency.
    Leaf {
        /// Total frequency of the bucket.
        freq: f64,
    },
}

/// An MHIST histogram stored as a split tree (paper §3.3.2).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SplitTree {
    attrs: AttrSet,
    /// The root bounding box (full attribute domains).
    domain: BoundingBox,
    /// Node arena; index 0 is the root.
    nodes: Vec<Node>,
    total: f64,
}

impl SplitTree {
    /// Assembles a split tree from raw parts, recomputing the cached
    /// total. Internal constructor used by the builder and operators,
    /// whose outputs are structurally valid by construction (checked in
    /// debug builds).
    pub(crate) fn from_parts(attrs: AttrSet, domain: BoundingBox, nodes: Vec<Node>) -> Self {
        let tree = Self::from_parts_unvalidated(attrs, domain, nodes);
        debug_assert!(tree.validate().is_ok(), "{:?}", tree.validate());
        tree
    }

    /// Like [`SplitTree::from_parts`] but defers validation to the caller
    /// — for inputs of unknown provenance (the codec), which must reject
    /// malformed trees with an error rather than an assertion.
    pub(crate) fn from_parts_unvalidated(
        attrs: AttrSet,
        domain: BoundingBox,
        nodes: Vec<Node>,
    ) -> Self {
        let total = nodes
            .iter()
            .map(|n| match n {
                Node::Leaf { freq } => *freq,
                Node::Internal { .. } => 0.0,
            })
            .sum();
        Self { attrs, domain, nodes, total }
    }

    /// Like [`SplitTree::from_parts_unvalidated`] but keeps the supplied
    /// cached total verbatim instead of recomputing it as the arena-order
    /// leaf sum — the snapshot codec needs this because a tree mutated by
    /// `update` carries a total that can differ from that sum in its last
    /// bits, and persistence must round-trip every `f64` bit-exactly.
    /// Callers must run [`SplitTree::validate`] (which tolerates the
    /// difference: it compares total and leaf sum within `1e-6` relative).
    pub(crate) fn from_parts_with_total(
        attrs: AttrSet,
        domain: BoundingBox,
        nodes: Vec<Node>,
        total: f64,
    ) -> Self {
        Self { attrs, domain, nodes, total }
    }

    /// The attributes the histogram covers.
    #[must_use]
    pub fn attrs(&self) -> &AttrSet {
        &self.attrs
    }

    /// The root bounding box (the full domain of each covered attribute).
    #[must_use]
    pub fn domain(&self) -> &BoundingBox {
        &self.domain
    }

    /// Total frequency mass.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of buckets (leaves) `b`.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, Node::Leaf { .. })).count()
    }

    /// Number of stored numeric values in the split-tree representation:
    /// `3b − 2` (one frequency per leaf, a dimension and a value per
    /// internal node).
    #[must_use]
    pub fn stored_numbers(&self) -> usize {
        3 * self.bucket_count() - 2
    }

    /// The node arena (root at index 0).
    #[must_use]
    pub(crate) fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Every bucket as `(bounding box, frequency)`.
    #[must_use]
    pub fn leaves(&self) -> Vec<(BoundingBox, f64)> {
        let mut out = Vec::with_capacity(self.bucket_count());
        self.walk_leaves(0, self.domain.clone(), &mut out);
        out
    }

    fn walk_leaves(&self, node: NodeId, bbox: BoundingBox, out: &mut Vec<(BoundingBox, f64)>) {
        match &self.nodes[node as usize] {
            Node::Leaf { freq } => out.push((bbox, *freq)),
            Node::Internal { attr, split, left, right } => {
                // Validated trees cover their split attributes; degrade to
                // an unclamped walk otherwise (`clamp` tolerates misses).
                let (lo, hi) = bbox.range(*attr).unwrap_or((0, u32::MAX));
                debug_assert!(*split > lo && *split <= hi, "split inside box");
                let mut lbox = bbox.clone();
                lbox.clamp(*attr, lo, split.saturating_sub(1));
                self.walk_leaves(*left, lbox, out);
                let mut rbox = bbox;
                rbox.clamp(*attr, *split, hi);
                self.walk_leaves(*right, rbox, out);
            }
        }
    }

    /// Estimated frequency mass inside the conjunction of inclusive ranges
    /// (attributes not covered by the histogram are ignored; repeated
    /// attributes intersect), under intra-bucket uniformity.
    ///
    /// This is exactly the paper's estimator: each bucket contributes its
    /// frequency scaled by the fraction of its volume inside the box.
    #[must_use]
    pub fn mass_in_box(&self, ranges: &[(AttrId, u32, u32)]) -> f64 {
        // Per-attribute constraint: the query ranges intersected with the
        // domain. Empty intersection anywhere means zero mass.
        let mut constraint: Vec<(u32, u32)> = self.domain.ranges().to_vec();
        for &(a, lo, hi) in ranges {
            if let Some(p) = self.attrs.position(a) {
                let c = &mut constraint[p];
                *c = (c.0.max(lo), c.1.min(hi));
                if c.0 > c.1 {
                    return 0.0;
                }
            }
        }
        let mut bounds: Vec<(u32, u32)> = self.domain.ranges().to_vec();
        self.mass_rec(0, &mut bounds, &constraint)
    }

    /// Estimated frequency mass inside a bounding box over (a subset of)
    /// the histogram's attributes — the allocation-light form used by the
    /// `product` operator's separator lookups.
    #[must_use]
    pub fn mass_in_bounding_box(&self, bbox: &BoundingBox) -> f64 {
        let mut constraint: Vec<(u32, u32)> = self.domain.ranges().to_vec();
        for (p, a) in self.attrs.iter().enumerate() {
            if let Some((lo, hi)) = bbox.range(a) {
                let c = &mut constraint[p];
                *c = (c.0.max(lo), c.1.min(hi));
                if c.0 > c.1 {
                    return 0.0;
                }
            }
        }
        let mut bounds: Vec<(u32, u32)> = self.domain.ranges().to_vec();
        self.mass_rec(0, &mut bounds, &constraint)
    }

    /// Allocation-free walk: `bounds` tracks the current node's box
    /// (mutated in place and restored), `constraint` the query box.
    fn mass_rec(&self, node: NodeId, bounds: &mut [(u32, u32)], constraint: &[(u32, u32)]) -> f64 {
        match &self.nodes[node as usize] {
            Node::Leaf { freq } => {
                // lint:allow-next-line(float-cmp): exact-zero bucket short-circuit
                if *freq == 0.0 {
                    return 0.0;
                }
                let mut fraction = 1.0;
                for (&(lo, hi), &(clo, chi)) in bounds.iter().zip(constraint) {
                    let olo = lo.max(clo);
                    let ohi = hi.min(chi);
                    if olo > ohi {
                        return 0.0;
                    }
                    fraction *= (f64::from(ohi - olo) + 1.0) / (f64::from(hi - lo) + 1.0);
                }
                freq * fraction
            }
            Node::Internal { attr, split, left, right } => {
                // An uncovered split attribute means a corrupt tree;
                // contribute zero mass rather than abort.
                let Some(p) = self.attrs.position(*attr) else {
                    return 0.0;
                };
                let (lo, hi) = bounds[p];
                let (clo, chi) = constraint[p];
                let mut mass = 0.0;
                if clo < *split && lo < *split {
                    bounds[p] = (lo, *split - 1);
                    mass += self.mass_rec(*left, bounds, constraint);
                }
                if chi >= *split && hi >= *split {
                    bounds[p] = (*split, hi);
                    mass += self.mass_rec(*right, bounds, constraint);
                }
                bounds[p] = (lo, hi);
                mass
            }
        }
    }

    /// Applies a point update: adds `delta` to the frequency of the bucket
    /// containing `key` (aligned with [`SplitTree::attrs`] in ascending
    /// order). Negative deltas are clamped so the bucket never goes below
    /// zero; the applied amount is returned.
    ///
    /// This is the primitive behind incremental synopsis maintenance
    /// (inserts/deletes on the base table): the bucketization is left
    /// unchanged, only counts move, so accuracy degrades gracefully until
    /// a rebuild.
    ///
    /// # Panics
    ///
    /// Panics if `key` does not match the histogram's arity or lies
    /// outside its domain box.
    pub fn update(&mut self, key: &[u32], delta: f64) -> f64 {
        assert_eq!(key.len(), self.attrs.len(), "key arity mismatch");
        assert!(self.domain.contains_point(key), "key {key:?} outside histogram domain");
        let mut node = 0u32;
        loop {
            match &self.nodes[node as usize] {
                Node::Internal { attr, split, left, right } => {
                    // Corrupt tree (uncovered split attribute): apply
                    // nothing rather than abort mid-update.
                    let Some(p) = self.attrs.position(*attr) else {
                        return 0.0;
                    };
                    node = if key[p] < *split { *left } else { *right };
                }
                Node::Leaf { freq } => {
                    let applied = delta.max(-*freq);
                    let new = freq + applied;
                    self.nodes[node as usize] = Node::Leaf { freq: new };
                    self.total += applied;
                    return applied;
                }
            }
        }
    }

    /// Structural validation (the synopsis integrity contract — see
    /// DESIGN.md "Invariants & lint policy"):
    ///
    /// 1. the arena is a well-formed binary tree rooted at 0: every child
    ///    index in range, every node reachable from the root exactly once
    ///    (no sharing, no cycles), and no orphan arena entries;
    /// 2. leaf/internal counts match (`b` leaves, `b − 1` internal nodes),
    ///    equivalently the wire payload is exactly
    ///    [`crate::codec::split_tree_bytes_exact`] bytes;
    /// 3. every split lies strictly inside its node's box (both children
    ///    non-empty) over a covered attribute;
    /// 4. every leaf frequency is finite and non-negative, and the cached
    ///    total equals the leaf sum;
    /// 5. the tree is no deeper than [`MAX_TREE_DEPTH`], so recursive
    ///    queries cannot exhaust the stack.
    ///
    /// The walk is iterative: `validate` must diagnose adversarially deep
    /// trees, not die on them. Returns a description of the first
    /// violation.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("empty node arena".into());
        }
        let mut visited = vec![false; self.nodes.len()];
        let mut stack: Vec<(NodeId, BoundingBox, usize)> = vec![(0, self.domain.clone(), 0)];
        let (mut leaves, mut internals) = (0usize, 0usize);
        let mut leaf_sum = 0.0f64;
        while let Some((node, bbox, depth)) = stack.pop() {
            if depth > MAX_TREE_DEPTH {
                return Err(format!("tree deeper than {MAX_TREE_DEPTH}"));
            }
            let idx = node as usize;
            let Some(n) = self.nodes.get(idx) else {
                return Err(format!("node id {node} out of range"));
            };
            if visited[idx] {
                return Err(format!("node {node} reachable more than once"));
            }
            visited[idx] = true;
            match n {
                Node::Leaf { freq } => {
                    if !freq.is_finite() || *freq < 0.0 {
                        return Err(format!("leaf {node} has invalid frequency {freq}"));
                    }
                    leaves += 1;
                    leaf_sum += freq;
                }
                Node::Internal { attr, split, left, right } => {
                    internals += 1;
                    let Some((lo, hi)) = bbox.range(*attr) else {
                        return Err(format!("node {node} splits uncovered attribute {attr}"));
                    };
                    if *split <= lo || *split > hi {
                        return Err(format!("node {node} split {split} outside ({lo}, {hi}]"));
                    }
                    let mut lbox = bbox.clone();
                    lbox.clamp(*attr, lo, split - 1);
                    let mut rbox = bbox;
                    rbox.clamp(*attr, *split, hi);
                    stack.push((*left, lbox, depth + 1));
                    stack.push((*right, rbox, depth + 1));
                }
            }
        }
        if leaves + internals != self.nodes.len() {
            return Err(format!(
                "arena has {} orphan nodes unreachable from the root",
                self.nodes.len() - leaves - internals
            ));
        }
        if leaves != internals + 1 {
            return Err(format!(
                "malformed binary tree: {leaves} leaves vs {internals} internal nodes"
            ));
        }
        // Counts pinned above imply the wire payload is exactly the paper's
        // 9b − 5 bytes; assert the accounting identity explicitly so codec
        // and validator cannot drift apart.
        let payload = 4 * leaves + 5 * internals;
        if payload != crate::codec::split_tree_bytes_exact(leaves) {
            return Err(format!(
                "payload accounting drifted: {payload} bytes vs split_tree_bytes_exact"
            ));
        }
        if !(self.total.is_finite() && (self.total - leaf_sum).abs() <= 1e-6 * (1.0 + leaf_sum)) {
            return Err(format!("cached total {} disagrees with leaf sum {leaf_sum}", self.total));
        }
        Ok(())
    }
}

/// Upper bound on split-tree depth. Legitimate MHIST constructions are far
/// shallower (depth grows with bucket count, and budgets are byte-bounded);
/// the cap exists so recursive query walks over decoded trees cannot
/// exhaust the stack on adversarial input.
pub const MAX_TREE_DEPTH: usize = 2048;

#[cfg(test)]
mod tests {
    use super::*;
    use dbhist_distribution::{Relation, Schema};

    pub(crate) fn grid_relation() -> Relation {
        // 8x8 grid; frequency of (x, y) = x + 2y + 1.
        let schema = Schema::new(vec![("x", 8), ("y", 8)]).unwrap();
        let mut rows = Vec::new();
        for x in 0..8u32 {
            for y in 0..8u32 {
                for _ in 0..(x + 2 * y + 1) {
                    rows.push(vec![x, y]);
                }
            }
        }
        Relation::from_rows(schema, rows).unwrap()
    }

    fn manual_tree() -> SplitTree {
        // Domain [0,7]x[0,7]; split x at 4, left split y at 2.
        let attrs = AttrSet::from_ids([0, 1]);
        let domain = BoundingBox::new(attrs.clone(), vec![(0, 7), (0, 7)]);
        let nodes = vec![
            Node::Internal { attr: 0, split: 4, left: 1, right: 2 },
            Node::Internal { attr: 1, split: 2, left: 3, right: 4 },
            Node::Leaf { freq: 40.0 },
            Node::Leaf { freq: 8.0 },
            Node::Leaf { freq: 24.0 },
        ];
        SplitTree::from_parts(attrs, domain, nodes)
    }

    #[test]
    fn totals_and_counts() {
        let t = manual_tree();
        assert_eq!(t.total(), 72.0);
        assert_eq!(t.bucket_count(), 3);
        assert_eq!(t.stored_numbers(), 7);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn leaves_partition_domain() {
        let t = manual_tree();
        let leaves = t.leaves();
        assert_eq!(leaves.len(), 3);
        let total_volume: u64 = leaves.iter().map(|(b, _)| b.volume()).sum();
        assert_eq!(total_volume, 64, "leaves tile the domain");
        // Specific boxes.
        assert_eq!(leaves[0].0.ranges(), &[(0, 3), (0, 1)]);
        assert_eq!(leaves[0].1, 8.0);
        assert_eq!(leaves[1].0.ranges(), &[(0, 3), (2, 7)]);
        assert_eq!(leaves[2].0.ranges(), &[(4, 7), (0, 7)]);
    }

    #[test]
    fn mass_full_box_is_total() {
        let t = manual_tree();
        assert!((t.mass_in_box(&[]) - 72.0).abs() < 1e-12);
        assert!((t.mass_in_box(&[(0, 0, 7), (1, 0, 7)]) - 72.0).abs() < 1e-12);
    }

    #[test]
    fn mass_respects_buckets_and_uniformity() {
        let t = manual_tree();
        // Exactly the right bucket.
        assert!((t.mass_in_box(&[(0, 4, 7)]) - 40.0).abs() < 1e-12);
        // Half of the right bucket along x.
        assert!((t.mass_in_box(&[(0, 6, 7)]) - 20.0).abs() < 1e-12);
        // Quarter of leaf (0..3, 0..1): one column of four.
        assert!((t.mass_in_box(&[(0, 0, 0), (1, 0, 1)]) - 2.0).abs() < 1e-12);
        // Constraint on an attribute the tree does not cover is ignored.
        assert!((t.mass_in_box(&[(9, 0, 0)]) - 72.0).abs() < 1e-12);
        // Empty constraint.
        assert_eq!(t.mass_in_box(&[(0, 4, 7), (0, 0, 3)]), 0.0);
    }

    #[test]
    fn validation_catches_bad_trees() {
        let attrs = AttrSet::from_ids([0]);
        let domain = BoundingBox::new(attrs.clone(), vec![(0, 3)]);
        // Split value outside the box.
        let t = SplitTree {
            attrs: attrs.clone(),
            domain: domain.clone(),
            nodes: vec![
                Node::Internal { attr: 0, split: 9, left: 1, right: 2 },
                Node::Leaf { freq: 1.0 },
                Node::Leaf { freq: 1.0 },
            ],
            total: 2.0,
        };
        assert!(t.validate().is_err());
        // Negative frequency.
        let t = SplitTree {
            attrs: attrs.clone(),
            domain: domain.clone(),
            nodes: vec![Node::Leaf { freq: -1.0 }],
            total: -1.0,
        };
        assert!(t.validate().is_err());
        // Dangling child id.
        let t = SplitTree {
            attrs,
            domain,
            nodes: vec![Node::Internal { attr: 0, split: 2, left: 5, right: 6 }],
            total: 0.0,
        };
        assert!(t.validate().is_err());
    }
}
