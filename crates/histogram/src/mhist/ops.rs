//! MHIST operators on split trees (paper §3.3.2, Figs. 4 & 5).
//!
//! Both `project` and `product` work *solely on the split-tree
//! representation* of their inputs and output — the paper's headline
//! implementation contribution. The shared workhorse is `restrict_node`
//! (the paper's `restrictNode(N, R)`): pruning a subtree to the splits and
//! leaves pertaining to a range restriction `R`.
//!
//! Structure generation follows the paper exactly. Frequencies:
//!
//! * `project` (Fig. 4 step 3) computes each output bucket's frequency as
//!   the uniformity-weighted sum `Σ w_l'·frequency(l')` via
//!   [`SplitTree::mass_in_box`];
//! * `product` (Fig. 5 step 10) evaluates the separation formula
//!   `(w_i f_i)(w_j f_j)/(w_ij f_ij)`. The input-bucket terms are O(1)
//!   per output bucket — every output bucket lies inside exactly one
//!   bucket of each operand, whose frequency and volume are threaded
//!   through the structural generation — while the separator term uses a
//!   (pruned) mass query on `H(S_ij)`, generalizing the paper's formula
//!   to output buckets that straddle several separator buckets.

use dbhist_distribution::{AttrId, AttrSet};

use crate::bbox::BoundingBox;
use crate::error::HistogramError;

use super::{Node, NodeId, SplitTree};

/// Temporary structural tree with a payload on each leaf.
#[derive(Debug, Clone)]
enum TempNode<L> {
    Internal { attr: AttrId, split: u32, left: Box<TempNode<L>>, right: Box<TempNode<L>> },
    Leaf(L),
}

/// Frequency and own-box volume of a source bucket.
#[derive(Debug, Clone, Copy)]
struct SourceLeaf {
    freq: f64,
    volume: f64,
}

/// Payload of a product bucket.
#[derive(Debug, Clone, Copy)]
enum ProductLeaf {
    /// The bucket lies inside exactly one bucket of each operand, whose
    /// frequency/volume are threaded through for O(1) evaluation.
    Pair { left: SourceLeaf, right: SourceLeaf },
    /// The structural budget ran out: the bucket may span several operand
    /// buckets; its frequency is computed by mass queries instead.
    Coarse,
}

/// Upper bound on the number of structural nodes a single `product` may
/// materialize. Chained products over many cliques grow multiplicatively;
/// past this budget the remaining regions collapse into coarse buckets
/// (estimates stay uniformity-consistent, resolution degrades gracefully,
/// and memory stays bounded).
const PRODUCT_NODE_BUDGET: usize = 1 << 18;

impl SplitTree {
    /// Projects the histogram onto `attrs ⊂ self.attrs()` (paper Fig. 4):
    /// the output split tree reflects every split along the kept
    /// dimensions, and each output bucket's frequency is the
    /// uniformity-weighted mass of the input inside it.
    ///
    /// # Errors
    ///
    /// Returns [`HistogramError::NotASubset`] if `attrs` is not a subset of
    /// the histogram's attributes, or [`HistogramError::InvalidRequest`]
    /// for an empty target set.
    pub fn project(&self, attrs: &AttrSet) -> Result<SplitTree, HistogramError> {
        if attrs.is_empty() {
            return Err(HistogramError::InvalidRequest {
                reason: "cannot project onto the empty attribute set".into(),
            });
        }
        if let Some(missing) = attrs.iter().find(|&a| !self.attrs().contains(a)) {
            return Err(HistogramError::NotASubset { missing });
        }
        if attrs == self.attrs() {
            return Ok(self.clone());
        }
        // Step 1 (genSplits): structure of the projected tree.
        let domain = sub_box(self.domain(), attrs);
        let structure = gen_splits(self, 0, attrs, &domain);
        // Steps 2–4: frequencies from uniformity-weighted sums.
        let tree = materialize(attrs.clone(), domain, &structure, |leaf_box, ()| {
            self.mass_in_box(&box_to_ranges(leaf_box))
        });
        Ok(tree)
    }

    /// Multiplies two clique histograms into a histogram over the union of
    /// their attributes (paper Fig. 5), using the separation formula
    /// `f_{Ci ∪ Cj} = f_{Ci} · f_{Cj} / f_{Ci ∩ Cj}`.
    ///
    /// # Errors
    ///
    /// Returns [`HistogramError::IncompatibleOperands`] if the operands
    /// disagree on a shared attribute's domain.
    pub fn product(&self, other: &SplitTree) -> Result<SplitTree, HistogramError> {
        let shared = self.attrs().intersection(other.attrs());
        for a in shared.iter() {
            if self.domain().range(a) != other.domain().range(a) {
                return Err(HistogramError::IncompatibleOperands {
                    reason: format!("attribute {a} has different domains in the operands"),
                });
            }
        }
        let union = self.attrs().union(other.attrs());
        // Union domain box: every union attribute has a range in at least
        // one operand by construction; a miss means corrupt operands.
        let mut ranges: Vec<(u32, u32)> = Vec::with_capacity(union.len());
        for a in union.iter() {
            let Some(r) = self.domain().range(a).or_else(|| other.domain().range(a)) else {
                return Err(HistogramError::IncompatibleOperands {
                    reason: format!("attribute {a} missing from both operand domains"),
                });
            };
            ranges.push(r);
        }
        let domain = BoundingBox::new(union.clone(), ranges);

        // Step 1: initialize with the split tree of `self`.
        // Steps 2–5: replace each of its leaves with `other` restricted to
        // the leaf's ranges along the shared attributes.
        let other_temp = to_source_temp(other, 0, other.domain().clone());
        let mut budget = PRODUCT_NODE_BUDGET as isize;
        let structure = graft(self, 0, self.domain().clone(), &other_temp, &mut budget);

        // Step 6: the separator histogram H(S_ij) = project(H(C_i), S_ij).
        let separator = if shared.is_empty() { None } else { Some(self.project(&shared)?) };

        // Steps 7–11: separation-formula frequencies. The operand terms
        // come from the threaded source buckets; the separator term from a
        // mass query (exactly `w_ij · f_ij` when the output bucket sits in
        // one separator bucket, the consistent generalization otherwise).
        let self_attrs = self.attrs().clone();
        let other_attrs = other.attrs().clone();
        let self_total = self.total();
        let tree = materialize(union, domain, &structure, |leaf_box, payload: ProductLeaf| {
            let (wi_fi, wj_fj) = match payload {
                ProductLeaf::Pair { left, right } => (
                    left.freq * leaf_box.volume_over(&self_attrs) as f64 / left.volume,
                    right.freq * leaf_box.volume_over(&other_attrs) as f64 / right.volume,
                ),
                ProductLeaf::Coarse => {
                    (self.mass_in_bounding_box(leaf_box), other.mass_in_bounding_box(leaf_box))
                }
            };
            // lint:allow-next-line(float-cmp): exact multiplicative zero short-circuit
            if wi_fi == 0.0 || wj_fj == 0.0 {
                return 0.0;
            }
            let fsep = match &separator {
                Some(sep) => sep.mass_in_bounding_box(leaf_box),
                None => self_total,
            };
            if fsep <= 0.0 {
                0.0
            } else {
                wi_fi * wj_fj / fsep
            }
        });
        Ok(tree)
    }
}

/// Restricts `domain` to the attributes in `attrs`. Attributes absent
/// from `domain` — excluded by the callers' subset checks — are dropped
/// rather than invented.
fn sub_box(domain: &BoundingBox, attrs: &AttrSet) -> BoundingBox {
    let mut kept = AttrSet::empty();
    let mut ranges: Vec<(u32, u32)> = Vec::with_capacity(attrs.len());
    for a in attrs.iter() {
        if let Some(r) = domain.range(a) {
            kept = kept.with(a);
            ranges.push(r);
        }
    }
    BoundingBox::new(kept, ranges)
}

/// `(attr, lo, hi)` constraints of a box.
fn box_to_ranges(bbox: &BoundingBox) -> Vec<(AttrId, u32, u32)> {
    bbox.attrs().iter().zip(bbox.ranges()).map(|(a, &(lo, hi))| (a, lo, hi)).collect()
}

/// The paper's `genSplits(N, S)` (Fig. 4): the structure of the projection
/// of the subtree at `node` onto `keep`, expressed over `keep`'s domain
/// box `keep_box`.
fn gen_splits(
    tree: &SplitTree,
    node: NodeId,
    keep: &AttrSet,
    keep_box: &BoundingBox,
) -> TempNode<()> {
    match &tree.nodes()[node as usize] {
        Node::Leaf { .. } => TempNode::Leaf(()),
        Node::Internal { attr, split, left, right } => {
            let l = gen_splits(tree, *left, keep, keep_box);
            let r = gen_splits(tree, *right, keep, keep_box);
            if keep.contains(*attr) {
                TempNode::Internal {
                    attr: *attr,
                    split: *split,
                    left: Box::new(l),
                    right: Box::new(r),
                }
            } else {
                // Fig. 4 steps 8–12: overlay the right structure onto every
                // leaf of the left structure, so that all splits along the
                // kept dimensions survive.
                overlay(l, &r, keep_box.clone())
            }
        }
    }
}

/// Replaces every leaf of `base` (whose box is tracked in `bbox`) with
/// `other` restricted to that leaf's ranges.
fn overlay(base: TempNode<()>, other: &TempNode<()>, bbox: BoundingBox) -> TempNode<()> {
    match base {
        TempNode::Leaf(()) => restrict_node(other, &bbox, &|()| ()),
        TempNode::Internal { attr, split, left, right } => {
            // Kept split attributes always have a range in the kept box;
            // if not (corrupt structure), degrade by skipping the clamp.
            let Some((lo, hi)) = bbox.range(attr) else {
                return TempNode::Internal {
                    attr,
                    split,
                    left: Box::new(overlay(*left, other, bbox.clone())),
                    right: Box::new(overlay(*right, other, bbox)),
                };
            };
            let mut lbox = bbox.clone();
            lbox.clamp(attr, lo, split - 1);
            let mut rbox = bbox;
            rbox.clamp(attr, split, hi);
            TempNode::Internal {
                attr,
                split,
                left: Box::new(overlay(*left, other, lbox)),
                right: Box::new(overlay(*right, other, rbox)),
            }
        }
    }
}

/// The paper's `restrictNode(N, R)`: the subtree of `node` containing only
/// the splits and leaves pertaining to the range restriction `restriction`.
/// Attributes not constrained by the restriction pass through untouched.
/// Leaf payloads are rebuilt through `map`.
fn restrict_node<L: Copy, M>(
    node: &TempNode<L>,
    restriction: &BoundingBox,
    map: &impl Fn(L) -> M,
) -> TempNode<M> {
    match node {
        TempNode::Leaf(payload) => TempNode::Leaf(map(*payload)),
        TempNode::Internal { attr, split, left, right } => match restriction.range(*attr) {
            Some((_, hi)) if hi < *split => restrict_node(left, restriction, map),
            Some((lo, _)) if lo >= *split => restrict_node(right, restriction, map),
            _ => TempNode::Internal {
                attr: *attr,
                split: *split,
                left: Box::new(restrict_node(left, restriction, map)),
                right: Box::new(restrict_node(right, restriction, map)),
            },
        },
    }
}

/// Copies a split tree's structure into a [`TempNode`] whose leaves carry
/// the source bucket's frequency and volume.
fn to_source_temp(tree: &SplitTree, node: NodeId, bbox: BoundingBox) -> TempNode<SourceLeaf> {
    match &tree.nodes()[node as usize] {
        Node::Leaf { freq } => {
            TempNode::Leaf(SourceLeaf { freq: *freq, volume: bbox.volume() as f64 })
        }
        Node::Internal { attr, split, left, right } => {
            // Validated trees always cover their split attributes; degrade
            // to an unclamped walk if this one is corrupt (`clamp` ignores
            // unknown attributes).
            let (lo, hi) = bbox.range(*attr).unwrap_or((0, u32::MAX));
            let mut lbox = bbox.clone();
            lbox.clamp(*attr, lo, split.saturating_sub(1));
            let mut rbox = bbox;
            rbox.clamp(*attr, *split, hi);
            TempNode::Internal {
                attr: *attr,
                split: *split,
                left: Box::new(to_source_temp(tree, *left, lbox)),
                right: Box::new(to_source_temp(tree, *right, rbox)),
            }
        }
    }
}

/// Grafts `other`'s restricted structure onto every leaf of `tree`
/// (product steps 1–5), walking `tree`'s structure over its own box to
/// identify the enclosing source bucket of each output region. `budget`
/// bounds the structural nodes created; exhausted regions collapse to
/// [`ProductLeaf::Coarse`].
fn graft(
    tree: &SplitTree,
    node: NodeId,
    own_box: BoundingBox,
    other: &TempNode<SourceLeaf>,
    budget: &mut isize,
) -> TempNode<ProductLeaf> {
    *budget -= 1;
    match &tree.nodes()[node as usize] {
        Node::Leaf { freq } => {
            if *budget <= 0 {
                return TempNode::Leaf(ProductLeaf::Coarse);
            }
            // lint:allow-next-line(float-cmp): exact zero marks a trimmed empty region
            if *freq == 0.0 {
                // A zero operand bucket zeroes the whole region; no need
                // to overlay the other operand's structure.
                return TempNode::Leaf(ProductLeaf::Pair {
                    left: SourceLeaf { freq: 0.0, volume: 1.0 },
                    right: SourceLeaf { freq: 0.0, volume: 1.0 },
                });
            }
            let left = SourceLeaf { freq: *freq, volume: own_box.volume() as f64 };
            // Restrict `other` to this bucket's ranges along the shared
            // attributes (constraints on other attributes are ignored by
            // `restrict_node` since they are absent from `own_box`).
            restrict_node_budgeted(other, &own_box, budget, &move |right| ProductLeaf::Pair {
                left,
                right,
            })
        }
        Node::Internal { attr, split, left, right } => {
            if *budget <= 0 {
                return TempNode::Leaf(ProductLeaf::Coarse);
            }
            let (lo, hi) = own_box.range(*attr).unwrap_or((0, u32::MAX));
            let mut lbox = own_box.clone();
            lbox.clamp(*attr, lo, split.saturating_sub(1));
            let mut rbox = own_box;
            rbox.clamp(*attr, *split, hi);
            TempNode::Internal {
                attr: *attr,
                split: *split,
                left: Box::new(graft(tree, *left, lbox, other, budget)),
                right: Box::new(graft(tree, *right, rbox, other, budget)),
            }
        }
    }
}

/// [`restrict_node`] with a node budget; exhausted regions collapse into
/// coarse product leaves.
fn restrict_node_budgeted(
    node: &TempNode<SourceLeaf>,
    restriction: &BoundingBox,
    budget: &mut isize,
    map: &impl Fn(SourceLeaf) -> ProductLeaf,
) -> TempNode<ProductLeaf> {
    *budget -= 1;
    if *budget <= 0 {
        return TempNode::Leaf(ProductLeaf::Coarse);
    }
    match node {
        TempNode::Leaf(payload) => TempNode::Leaf(map(*payload)),
        TempNode::Internal { attr, split, left, right } => match restriction.range(*attr) {
            Some((_, hi)) if hi < *split => restrict_node_budgeted(left, restriction, budget, map),
            Some((lo, _)) if lo >= *split => {
                restrict_node_budgeted(right, restriction, budget, map)
            }
            _ => TempNode::Internal {
                attr: *attr,
                split: *split,
                left: Box::new(restrict_node_budgeted(left, restriction, budget, map)),
                right: Box::new(restrict_node_budgeted(right, restriction, budget, map)),
            },
        },
    }
}

/// Converts a structural tree into a [`SplitTree`], computing each leaf's
/// frequency from its bounding box and payload.
fn materialize<L: Copy>(
    attrs: AttrSet,
    domain: BoundingBox,
    structure: &TempNode<L>,
    mut leaf_freq: impl FnMut(&BoundingBox, L) -> f64,
) -> SplitTree {
    let mut nodes: Vec<Node> = Vec::new();
    build_arena(structure, &domain, &mut nodes, &mut leaf_freq);
    SplitTree::from_parts(attrs, domain, nodes)
}

/// Appends `structure` to the arena, returning its node id.
///
/// All-zero subtrees are collapsed into single zero leaves as they are
/// built: a zero bucket estimates zero over every sub-box regardless of
/// its internal splits, so the collapse is estimate-preserving, and it
/// shrinks the products of sparse operands (whose trimmed empty regions
/// multiply into large zero forests) dramatically.
fn build_arena<L: Copy>(
    structure: &TempNode<L>,
    bbox: &BoundingBox,
    nodes: &mut Vec<Node>,
    leaf_freq: &mut impl FnMut(&BoundingBox, L) -> f64,
) -> NodeId {
    match structure {
        TempNode::Leaf(payload) => {
            let id = nodes.len() as NodeId;
            nodes.push(Node::Leaf { freq: leaf_freq(bbox, *payload) });
            id
        }
        TempNode::Internal { attr, split, left, right } => {
            let id = nodes.len() as NodeId;
            nodes.push(Node::Leaf { freq: 0.0 }); // placeholder
            let (lo, hi) = bbox.range(*attr).unwrap_or((0, u32::MAX));
            let mut lbox = bbox.clone();
            lbox.clamp(*attr, lo, split.saturating_sub(1));
            let left_id = build_arena(left, &lbox, nodes, leaf_freq);
            let mut rbox = bbox.clone();
            rbox.clamp(*attr, *split, hi);
            let right_id = build_arena(right, &rbox, nodes, leaf_freq);
            // Zero-collapse: if both children ended up as zero leaves
            // (they are the only arena entries past `id`), drop them.
            let both_zero = left_id == id + 1
                && matches!(nodes[left_id as usize], Node::Leaf { freq } if freq == 0.0) // lint:allow(float-cmp): collapse only literally-zero leaves
                && right_id as usize == nodes.len() - 1
                && matches!(nodes[right_id as usize], Node::Leaf { freq } if freq == 0.0); // lint:allow(float-cmp): collapse only literally-zero leaves
            if both_zero {
                nodes.truncate(id as usize + 1);
                // `id` already holds the zero-leaf placeholder.
            } else {
                nodes[id as usize] =
                    Node::Internal { attr: *attr, split: *split, left: left_id, right: right_id };
            }
            id
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::criterion::SplitCriterion;
    use crate::mhist::tests::grid_relation;
    use crate::mhist::MhistBuilder;
    use dbhist_distribution::{Relation, Schema};

    #[test]
    fn project_conserves_mass() {
        let dist = grid_relation().distribution();
        let tree = MhistBuilder::build(&dist, 12, SplitCriterion::MaxDiff).unwrap();
        for target in [AttrSet::singleton(0), AttrSet::singleton(1)] {
            let p = tree.project(&target).unwrap();
            assert_eq!(p.attrs(), &target);
            assert!((p.total() - tree.total()).abs() < 1e-6, "mass conserved");
            assert!(p.validate().is_ok());
        }
    }

    #[test]
    fn project_identity_and_errors() {
        let dist = grid_relation().distribution();
        let tree = MhistBuilder::build(&dist, 6, SplitCriterion::MaxDiff).unwrap();
        let same = tree.project(&AttrSet::from_ids([0, 1])).unwrap();
        assert_eq!(same.bucket_count(), tree.bucket_count());
        assert!(tree.project(&AttrSet::empty()).is_err());
        assert!(matches!(
            tree.project(&AttrSet::singleton(9)),
            Err(HistogramError::NotASubset { missing: 9 })
        ));
    }

    #[test]
    fn project_reflects_all_kept_splits() {
        // The paper's motivating example: splits on X at different values in
        // different buckets must all appear in the projection onto X.
        let dist = grid_relation().distribution();
        let tree = MhistBuilder::build(&dist, 16, SplitCriterion::MaxDiff).unwrap();
        let p = tree.project(&AttrSet::singleton(0)).unwrap();
        // Collect distinct split boundaries of the source along attr 0.
        let mut source_bounds: Vec<u32> =
            tree.leaves().iter().map(|(b, _)| b.range(0).unwrap().0).filter(|&lo| lo > 0).collect();
        source_bounds.sort_unstable();
        source_bounds.dedup();
        let mut proj_bounds: Vec<u32> =
            p.leaves().iter().map(|(b, _)| b.range(0).unwrap().0).filter(|&lo| lo > 0).collect();
        proj_bounds.sort_unstable();
        proj_bounds.dedup();
        assert_eq!(source_bounds, proj_bounds);
    }

    #[test]
    fn project_matches_direct_estimate() {
        // Projection then estimation must agree with estimating on the
        // source with the same (marginal) ranges.
        let dist = grid_relation().distribution();
        let tree = MhistBuilder::build(&dist, 20, SplitCriterion::MaxDiff).unwrap();
        let p = tree.project(&AttrSet::singleton(1)).unwrap();
        for lo in 0..8u32 {
            for hi in lo..8u32 {
                let direct = tree.mass_in_box(&[(1, lo, hi)]);
                let projected = p.mass_in_box(&[(1, lo, hi)]);
                assert!(
                    (direct - projected).abs() < 1e-6,
                    "range [{lo},{hi}]: {direct} vs {projected}"
                );
            }
        }
    }

    /// Builds split trees over two overlapping marginals of a 3-attribute
    /// relation where (a ⊥ c | b) holds by construction.
    fn conditional_pair() -> (SplitTree, SplitTree, Relation) {
        let schema = Schema::new(vec![("a", 6), ("b", 4), ("c", 6)]).unwrap();
        let mut rows = Vec::new();
        // a depends on b, c depends on b, a ⊥ c given b.
        for b in 0..4u32 {
            for a in 0..6u32 {
                for c in 0..6u32 {
                    let fa = if a % 4 == b { 3 } else { 1 };
                    let fc = if c % 4 == b { 2 } else { 1 };
                    for _ in 0..fa * fc {
                        rows.push(vec![a, b, c]);
                    }
                }
            }
        }
        let rel = Relation::from_rows(schema, rows).unwrap();
        let ab = rel.marginal(&AttrSet::from_ids([0, 1])).unwrap();
        let bc = rel.marginal(&AttrSet::from_ids([1, 2])).unwrap();
        let hab = MhistBuilder::build(&ab, 24, SplitCriterion::MaxDiff).unwrap();
        let hbc = MhistBuilder::build(&bc, 24, SplitCriterion::MaxDiff).unwrap();
        (hab, hbc, rel)
    }

    #[test]
    fn product_covers_union_and_conserves_mass() {
        let (hab, hbc, rel) = conditional_pair();
        let prod = hab.product(&hbc).unwrap();
        assert_eq!(prod.attrs(), &AttrSet::from_ids([0, 1, 2]));
        assert!(prod.validate().is_ok());
        let n = rel.row_count() as f64;
        assert!((prod.total() - n).abs() / n < 0.02, "product total {} vs N {n}", prod.total());
    }

    #[test]
    fn product_with_saturated_histograms_is_exact() {
        // With enough buckets both marginals are exact, so the product must
        // reproduce the conditional-independence estimate exactly.
        let (_, _, rel) = conditional_pair();
        let ab = rel.marginal(&AttrSet::from_ids([0, 1])).unwrap();
        let bc = rel.marginal(&AttrSet::from_ids([1, 2])).unwrap();
        let hab = MhistBuilder::build(&ab, 10_000, SplitCriterion::MaxDiff).unwrap();
        let hbc = MhistBuilder::build(&bc, 10_000, SplitCriterion::MaxDiff).unwrap();
        let prod = hab.product(&hbc).unwrap();
        let b_marg = rel.marginal(&AttrSet::singleton(1)).unwrap();
        for a in 0..6u32 {
            for b in 0..4u32 {
                for c in 0..6u32 {
                    let expect =
                        ab.frequency(&[a, b]) * bc.frequency(&[b, c]) / b_marg.frequency(&[b]);
                    let got = prod.mass_in_box(&[(0, a, a), (1, b, b), (2, c, c)]);
                    assert!((got - expect).abs() < 1e-6, "cell ({a},{b},{c}): {got} vs {expect}");
                }
            }
        }
    }

    #[test]
    fn product_disjoint_attrs_is_independence() {
        // Disjoint attribute sets: empty separator, f = f1 · f2 / N.
        let schema = Schema::new(vec![("x", 4), ("y", 4)]).unwrap();
        let rows: Vec<Vec<u32>> = (0..160u32).map(|i| vec![i % 4, (i * 3) % 4]).collect();
        let rel = Relation::from_rows(schema, rows).unwrap();
        let hx = MhistBuilder::build(
            &rel.marginal(&AttrSet::singleton(0)).unwrap(),
            4,
            SplitCriterion::MaxDiff,
        )
        .unwrap();
        let hy = MhistBuilder::build(
            &rel.marginal(&AttrSet::singleton(1)).unwrap(),
            4,
            SplitCriterion::MaxDiff,
        )
        .unwrap();
        let prod = hx.product(&hy).unwrap();
        for x in 0..4u32 {
            for y in 0..4u32 {
                let expect = 40.0 * 40.0 / 160.0;
                let got = prod.mass_in_box(&[(0, x, x), (1, y, y)]);
                assert!((got - expect).abs() < 1e-9);
            }
        }
        assert!((prod.total() - 160.0).abs() < 1e-9);
    }

    #[test]
    fn product_rejects_incompatible_domains() {
        let s1 = Schema::new(vec![("x", 4)]).unwrap();
        let s2 = Schema::new(vec![("x", 8)]).unwrap();
        let r1 =
            Relation::from_rows(s1, (0..16u32).map(|i| vec![i % 4]).collect::<Vec<_>>()).unwrap();
        let r2 =
            Relation::from_rows(s2, (0..16u32).map(|i| vec![i % 8]).collect::<Vec<_>>()).unwrap();
        let h1 = MhistBuilder::build(&r1.distribution(), 2, SplitCriterion::MaxDiff).unwrap();
        let h2 = MhistBuilder::build(&r2.distribution(), 2, SplitCriterion::MaxDiff).unwrap();
        assert!(matches!(h1.product(&h2), Err(HistogramError::IncompatibleOperands { .. })));
    }

    #[test]
    fn product_then_project_roundtrip() {
        // Projecting a product back onto one operand's attrs approximates
        // that operand (exactly, for consistent marginals of the same data).
        let (hab, hbc, _) = conditional_pair();
        let prod = hab.product(&hbc).unwrap();
        let back = prod.project(&AttrSet::from_ids([0, 1])).unwrap();
        // Totals agree with the original marginal histogram's.
        assert!((back.total() - hab.total()).abs() / hab.total() < 0.02);
    }

    #[test]
    fn product_matches_slow_mass_formula() {
        // The O(1)-per-leaf fast path must agree with evaluating the
        // separation formula through mass queries on the operands.
        let (hab, hbc, _) = conditional_pair();
        let sep = hab.project(&AttrSet::singleton(1)).unwrap();
        let prod = hab.product(&hbc).unwrap();
        for (bbox, freq) in prod.leaves() {
            let ranges = box_to_ranges(&bbox);
            let fi = hab.mass_in_box(&ranges);
            let fj = hbc.mass_in_box(&ranges);
            let fs = sep.mass_in_box(&ranges);
            let expect = if fs <= 0.0 { 0.0 } else { fi * fj / fs };
            assert!(
                (freq - expect).abs() < 1e-6 * (1.0 + expect),
                "box {bbox:?}: {freq} vs {expect}"
            );
        }
    }
}
