//! Flattened, total-annotated split-tree indices for O(log b) range sums.
//!
//! [`TreeIndex`] lowers a [`SplitTree`] into two contiguous parallel
//! arrays — a flat `f64` array of per-node **subtree totals** and a packed
//! node array with precomputed child offsets — and answers
//! `mass_in_box` queries with a pruned walk that is **bit-identical** to
//! [`SplitTree::mass_in_box`] while touching only the buckets on the
//! query-box boundary ("Enhancing Histograms by Tree-Like Bucket
//! Indices"-style aggregates).
//!
//! # Layout
//!
//! Nodes are stored in preorder: a node at index `i` has its left child at
//! `i + 1` and its right child at an explicit offset (a CSR-style index),
//! so a root-to-leaf descent is a forward scan of two contiguous arrays.
//! Each packed node carries the split value, the right-child offset, and
//! the split attribute's *position* within the tree's attribute set
//! (`u16::MAX` marks a leaf), so the walk never re-derives
//! `attrs.position(attr)` per node.
//!
//! Two lowered layouts exist:
//!
//! * [`IndexLayout::Dense`] — every arena node is materialized.
//! * [`IndexLayout::Sparse`] — subtrees whose total mass is exactly zero
//!   are collapsed into a single zero leaf (the self-tuning-histogram
//!   trick of keeping storage proportional to *occupied* buckets). Chosen
//!   automatically when leaf occupancy falls below
//!   [`SPARSE_OCCUPANCY_THRESHOLD`].
//!
//! # Bit-identity contract
//!
//! The walk reproduces `SplitTree::mass_rec` exactly — same descent
//! conditions, same left-then-right `+=` accumulation, same per-leaf
//! fraction loop in attribute order — and adds exactly two prunes, each
//! proven to return the bit pattern the full recursion would:
//!
//! 1. **Zero subtrees.** Leaf frequencies are validated non-negative, so a
//!    subtree total of `0.0` means every leaf in it is exactly zero; the
//!    full recursion over it returns `+0.0` (every leaf short-circuits on
//!    its zero check), and `x + 0.0 == x` bitwise for the non-negative
//!    accumulator. Returning `0.0` without descending is identical.
//! 2. **Fully-contained subtrees.** When the query box covers the node's
//!    box in every dimension (tracked in a per-dimension bitmask that only
//!    the split dimension can change on descent), every leaf fraction
//!    factor is exactly `(hi-lo+1)/(hi-lo+1) == 1.0`, so each non-zero
//!    leaf contributes exactly `freq` and the recursion's tree-shaped sum
//!    `(l + r)` is precisely how the subtree totals were precomputed.
//!    Returning the stored total is identical.
//!
//! The summation order is therefore *fixed by the tree shape* and shared
//! with the interpreter; `tests/plan_equivalence.rs` pins the equivalence
//! with proptests.

use dbhist_distribution::{AttrId, AttrSet};

use super::{Node, SplitTree};

/// Leaf occupancy (non-zero leaves / total leaves) below which
/// [`TreeIndex::lower`] picks the zero-collapsing sparse layout.
pub const SPARSE_OCCUPANCY_THRESHOLD: f64 = 0.25;

/// Sentinel in [`PackedNode::pos`] marking a leaf.
const LEAF_POS: u16 = u16::MAX;

/// Which lowering a [`TreeIndex`] was built with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexLayout {
    /// Every arena node materialized.
    Dense,
    /// All-zero subtrees collapsed into single zero leaves.
    Sparse,
}

/// One flattened node: split value, right-child offset (left child is
/// always the next index), and the split attribute's position in the
/// tree's attribute set (`u16::MAX` = leaf).
#[derive(Debug, Clone, Copy)]
struct PackedNode {
    split: u32,
    right: u32,
    pos: u16,
}

/// A flattened split tree answering `mass_in_box` with a pruned,
/// bit-identical walk; see the [module docs](self) for the layout and the
/// bit-identity contract.
#[derive(Debug, Clone)]
pub struct TreeIndex {
    attrs: AttrSet,
    /// The root box, one inclusive range per attribute position.
    domain: Vec<(u32, u32)>,
    /// Per-node subtree totals — the contiguous flat `f64` array.
    totals: Vec<f64>,
    /// Parallel packed structure array.
    nodes: Vec<PackedNode>,
    layout: IndexLayout,
    /// Leaves in the source tree (before any sparse collapsing).
    source_leaves: usize,
    /// Leaves with non-zero frequency in the source tree.
    occupied_leaves: usize,
}

impl TreeIndex {
    /// Lowers `tree` into a flattened index, choosing
    /// [`IndexLayout::Sparse`] when leaf occupancy is below
    /// [`SPARSE_OCCUPANCY_THRESHOLD`] and [`IndexLayout::Dense`]
    /// otherwise.
    ///
    /// Returns `None` when the tree cannot be indexed: more than 64
    /// attributes (the containment bitmask is a `u64`), or a structurally
    /// inconsistent arena (an uncovered split attribute), for which the
    /// caller must keep using the tree walk.
    #[must_use]
    pub fn lower(tree: &SplitTree) -> Option<Self> {
        if tree.attrs().len() > 64 {
            return None;
        }
        // Subtree totals on the source arena, children before parents.
        // Leaf totals are zero-normalized (`-0.0` → `+0.0`) so the flat
        // total doubles as the walk's zero short-circuit; for non-zero
        // leaves the total *is* the frequency bit pattern.
        let arena = tree.nodes();
        let mut arena_total = vec![0.0f64; arena.len()];
        for (idx, node) in arena.iter().enumerate().rev() {
            arena_total[idx] = match node {
                Node::Leaf { freq } => {
                    // lint:allow-next-line(float-cmp): exact-zero normalization mirrors mass_rec's short-circuit
                    if *freq == 0.0 {
                        0.0
                    } else {
                        *freq
                    }
                }
                Node::Internal { left, right, .. } => {
                    // Children always sit later in the arena than their
                    // parent in builder/codec output; fall back to a
                    // second pass if not.
                    let (l, r) = (*left as usize, *right as usize);
                    if l <= idx || r <= idx {
                        return None;
                    }
                    arena_total[l] + arena_total[r]
                }
            };
        }
        let source_leaves = arena.iter().filter(|n| matches!(n, Node::Leaf { .. })).count();
        let occupied_leaves = arena
            .iter()
            // lint:allow-next-line(float-cmp): occupancy counts exact-zero buckets
            .filter(|n| matches!(n, Node::Leaf { freq } if *freq != 0.0))
            .count();
        #[allow(clippy::cast_precision_loss)]
        let occupancy =
            if source_leaves == 0 { 1.0 } else { occupied_leaves as f64 / source_leaves as f64 };
        let layout = if occupancy < SPARSE_OCCUPANCY_THRESHOLD {
            IndexLayout::Sparse
        } else {
            IndexLayout::Dense
        };

        let mut index = Self {
            attrs: tree.attrs().clone(),
            domain: tree.domain().ranges().to_vec(),
            totals: Vec::with_capacity(arena.len()),
            nodes: Vec::with_capacity(arena.len()),
            layout,
            source_leaves,
            occupied_leaves,
        };
        index.emit(tree, &arena_total, 0)?;
        Some(index)
    }

    /// Appends the subtree rooted at arena node `src` in preorder,
    /// collapsing zero subtrees under the sparse layout. Returns `None`
    /// on an uncovered split attribute (corrupt tree).
    fn emit(&mut self, tree: &SplitTree, arena_total: &[f64], src: u32) -> Option<()> {
        let total = arena_total[src as usize];
        // lint:allow-next-line(float-cmp): zero subtrees prune identically whatever their shape
        let collapse = self.layout == IndexLayout::Sparse && total == 0.0;
        match &tree.nodes()[src as usize] {
            Node::Internal { attr, split, left, right } if !collapse => {
                let pos = tree.attrs().position(*attr)?;
                let pos = u16::try_from(pos).ok().filter(|p| *p != LEAF_POS)?;
                let here = self.nodes.len();
                self.totals.push(total);
                self.nodes.push(PackedNode { split: *split, right: 0, pos });
                self.emit(tree, arena_total, *left)?;
                let right_at = u32::try_from(self.nodes.len()).ok()?;
                self.nodes[here].right = right_at;
                self.emit(tree, arena_total, *right)?;
            }
            _ => {
                // A true leaf, or a zero subtree collapsed into one.
                self.totals.push(total);
                self.nodes.push(PackedNode { split: 0, right: 0, pos: LEAF_POS });
            }
        }
        Some(())
    }

    /// The layout the lowering selected.
    #[must_use]
    pub fn layout(&self) -> IndexLayout {
        self.layout
    }

    /// The attributes the index covers (same as the source tree).
    #[must_use]
    pub fn attrs(&self) -> &AttrSet {
        &self.attrs
    }

    /// Source-tree leaves with non-zero frequency over all source leaves,
    /// the sparse-selection criterion.
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        if self.source_leaves == 0 {
            1.0
        } else {
            self.occupied_leaves as f64 / self.source_leaves as f64
        }
    }

    /// Materialized nodes (post-collapse) — the sparse layout's storage
    /// win shows up here.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total frequency mass (the root's subtree total).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.totals.first().copied().unwrap_or(0.0)
    }

    /// Heap bytes held by the two flat arrays.
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        self.totals.len() * std::mem::size_of::<f64>()
            + self.nodes.len() * std::mem::size_of::<PackedNode>()
    }

    /// Bit-identical to [`SplitTree::mass_in_box`] on the source tree;
    /// allocates its own scratch. Prefer
    /// [`TreeIndex::mass_in_box_with`] on hot paths.
    #[must_use]
    pub fn mass_in_box(&self, ranges: &[(AttrId, u32, u32)]) -> f64 {
        let mut bounds = Vec::new();
        let mut constraint = Vec::new();
        self.mass_in_box_with(ranges, &mut bounds, &mut constraint)
    }

    /// Bit-identical to [`SplitTree::mass_in_box`] on the source tree,
    /// reusing caller-owned scratch buffers (cleared and refilled here)
    /// so repeated queries allocate nothing.
    #[must_use]
    pub fn mass_in_box_with(
        &self,
        ranges: &[(AttrId, u32, u32)],
        bounds: &mut Vec<(u32, u32)>,
        constraint: &mut Vec<(u32, u32)>,
    ) -> f64 {
        // Constraint setup is verbatim from SplitTree::mass_in_box: query
        // ranges intersected with the domain, empty intersection ⇒ 0.
        constraint.clear();
        constraint.extend_from_slice(&self.domain);
        for &(a, lo, hi) in ranges {
            if let Some(p) = self.attrs.position(a) {
                let c = &mut constraint[p];
                *c = (c.0.max(lo), c.1.min(hi));
                if c.0 > c.1 {
                    return 0.0;
                }
            }
        }
        bounds.clear();
        bounds.extend_from_slice(&self.domain);
        // Bit p of `resolved` = "the query box fully covers the current
        // node's box in dimension p". Since the constraint was intersected
        // with the domain, the root is covered exactly where the
        // constraint equals the domain.
        let full: u64 =
            if self.domain.len() >= 64 { u64::MAX } else { (1u64 << self.domain.len()) - 1 };
        let mut resolved = 0u64;
        for (p, (&(lo, hi), &(clo, chi))) in bounds.iter().zip(constraint.iter()).enumerate() {
            if clo <= lo && hi <= chi {
                resolved |= 1u64 << p;
            }
        }
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.mass_rec(0, bounds, constraint, resolved, full)
    }

    /// The pruned walk; see the module docs for why both prunes are
    /// bit-identical to `SplitTree::mass_rec`.
    fn mass_rec(
        &self,
        i: usize,
        bounds: &mut [(u32, u32)],
        constraint: &[(u32, u32)],
        resolved: u64,
        full: u64,
    ) -> f64 {
        let t = self.totals[i];
        // lint:allow-next-line(float-cmp): exact-zero subtree prune (proof in module docs)
        if t == 0.0 {
            return 0.0;
        }
        if resolved == full {
            return t;
        }
        let node = self.nodes[i];
        if node.pos == LEAF_POS {
            // Verbatim leaf fraction loop from SplitTree::mass_rec; `t`
            // is the leaf frequency bit pattern (non-zero here).
            let mut fraction = 1.0;
            for (&(lo, hi), &(clo, chi)) in bounds.iter().zip(constraint) {
                let olo = lo.max(clo);
                let ohi = hi.min(chi);
                if olo > ohi {
                    return 0.0;
                }
                fraction *= (f64::from(ohi - olo) + 1.0) / (f64::from(hi - lo) + 1.0);
            }
            return t * fraction;
        }
        let p = usize::from(node.pos);
        let split = node.split;
        let (lo, hi) = bounds[p];
        let (clo, chi) = constraint[p];
        // Only dimension p changes on descent, so only bit p of the
        // containment mask needs recomputing per child.
        let base = resolved & !(1u64 << p);
        let mut mass = 0.0;
        if clo < split && lo < split {
            bounds[p] = (lo, split - 1);
            let r = base | (u64::from(clo <= lo && split - 1 <= chi) << p);
            mass += self.mass_rec(i + 1, bounds, constraint, r, full);
        }
        if chi >= split && hi >= split {
            bounds[p] = (split, hi);
            let r = base | (u64::from(clo <= split && hi <= chi) << p);
            mass += self.mass_rec(node.right as usize, bounds, constraint, r, full);
        }
        bounds[p] = (lo, hi);
        mass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbox::BoundingBox;
    use crate::mhist::MhistBuilder;
    use crate::SplitCriterion;
    use dbhist_distribution::{Relation, Schema};

    fn skewed_tree(zero_fraction: u32) -> SplitTree {
        // 16x16 grid where only cells with x % zero_fraction == 0 carry mass.
        let schema = Schema::new(vec![("x", 16), ("y", 16)]).unwrap();
        let mut rows = Vec::new();
        for x in 0..16u32 {
            for y in 0..16u32 {
                if zero_fraction == 0 || x % zero_fraction == 0 {
                    for _ in 0..=(x + y) % 5 {
                        rows.push(vec![x, y]);
                    }
                }
            }
        }
        let rel = Relation::from_rows(schema, rows).unwrap();
        MhistBuilder::build(&rel.distribution(), 24, SplitCriterion::MaxDiff).unwrap()
    }

    fn boxes() -> Vec<Vec<(AttrId, u32, u32)>> {
        let mut out = vec![vec![]];
        for lo in [0u32, 3, 7, 15] {
            for hi in [0u32, 4, 9, 15] {
                out.push(vec![(0, lo, hi)]);
                out.push(vec![(1, lo, hi)]);
                out.push(vec![(0, lo, hi), (1, hi.min(12), 15)]);
                out.push(vec![(0, lo, hi), (1, 2, 5), (0, 1, 14)]);
            }
        }
        out.push(vec![(9, 0, 0)]); // uncovered attribute ignored
        out
    }

    #[test]
    fn dense_index_is_bit_identical_to_tree_walk() {
        let tree = skewed_tree(0);
        let index = TreeIndex::lower(&tree).unwrap();
        assert_eq!(index.layout(), IndexLayout::Dense);
        assert_eq!(index.total().to_bits(), {
            let mut b = Vec::new();
            let mut c = Vec::new();
            index.mass_in_box_with(&[], &mut b, &mut c).to_bits()
        });
        for q in boxes() {
            assert_eq!(
                tree.mass_in_box(&q).to_bits(),
                index.mass_in_box(&q).to_bits(),
                "query {q:?}"
            );
        }
    }

    #[test]
    fn sparse_index_collapses_and_stays_bit_identical() {
        let tree = skewed_tree(8); // only x ∈ {0, 8} occupied
        let index = TreeIndex::lower(&tree).unwrap();
        assert!(index.occupancy() <= 1.0);
        if index.layout() == IndexLayout::Sparse {
            assert!(index.node_count() <= tree.nodes().len());
        }
        for q in boxes() {
            assert_eq!(
                tree.mass_in_box(&q).to_bits(),
                index.mass_in_box(&q).to_bits(),
                "query {q:?}"
            );
        }
    }

    #[test]
    fn scratch_reuse_across_queries_changes_nothing() {
        let tree = skewed_tree(3);
        let index = TreeIndex::lower(&tree).unwrap();
        let mut bounds = Vec::new();
        let mut constraint = Vec::new();
        for q in boxes() {
            let fresh = index.mass_in_box(&q);
            let reused = index.mass_in_box_with(&q, &mut bounds, &mut constraint);
            assert_eq!(fresh.to_bits(), reused.to_bits());
            assert_eq!(tree.mass_in_box(&q).to_bits(), reused.to_bits());
        }
    }

    #[test]
    fn fully_contained_prune_returns_the_total() {
        let attrs = AttrSet::from_ids([0, 1]);
        let domain = BoundingBox::new(attrs.clone(), vec![(0, 7), (0, 7)]);
        let nodes = vec![
            Node::Internal { attr: 0, split: 4, left: 1, right: 2 },
            Node::Leaf { freq: 0.1 + 0.2 }, // deliberately inexact
            Node::Leaf { freq: 24.0 },
        ];
        let tree = SplitTree::from_parts(attrs, domain, nodes);
        let index = TreeIndex::lower(&tree).unwrap();
        let full = [(0u16, 0u32, 7u32), (1, 0, 7)];
        assert_eq!(tree.mass_in_box(&full).to_bits(), index.mass_in_box(&full).to_bits());
        assert_eq!(index.mass_in_box(&full).to_bits(), index.total().to_bits());
    }
}
