//! Axis-aligned bounding boxes over attribute subsets.
//!
//! Histogram buckets are hyper-rectangles over integer-coded attribute
//! domains. A [`BoundingBox`] pairs an [`AttrSet`] with an inclusive
//! `(lo, hi)` range per attribute (in the set's ascending order) and
//! provides the geometry every operator needs: volume, intersection,
//! containment, and overlap fractions for the intra-bucket uniformity
//! assumption.

use dbhist_distribution::{AttrId, AttrSet};

/// An axis-aligned box: one inclusive integer range per attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BoundingBox {
    attrs: AttrSet,
    /// `(lo, hi)` inclusive, aligned with `attrs` in ascending order.
    ranges: Vec<(u32, u32)>,
}

impl BoundingBox {
    /// Creates a box from aligned ranges.
    ///
    /// # Panics
    ///
    /// Panics if `ranges` is not aligned with `attrs` or any range is
    /// inverted.
    #[must_use]
    pub fn new(attrs: AttrSet, ranges: Vec<(u32, u32)>) -> Self {
        assert_eq!(attrs.len(), ranges.len(), "ranges must align with attrs");
        assert!(ranges.iter().all(|&(lo, hi)| lo <= hi), "inverted range");
        Self { attrs, ranges }
    }

    /// The attributes the box constrains.
    #[must_use]
    pub fn attrs(&self) -> &AttrSet {
        &self.attrs
    }

    /// The range of attribute `a`, if the box constrains it.
    #[must_use]
    pub fn range(&self, a: AttrId) -> Option<(u32, u32)> {
        self.attrs.position(a).map(|p| self.ranges[p])
    }

    /// The aligned ranges slice.
    #[must_use]
    pub fn ranges(&self) -> &[(u32, u32)] {
        &self.ranges
    }

    /// Mutably narrows the range of attribute `a` to the intersection with
    /// `(lo, hi)`. Returns `false` (leaving the box unchanged) if the
    /// intersection is empty or the attribute is not constrained.
    pub fn clamp(&mut self, a: AttrId, lo: u32, hi: u32) -> bool {
        let Some(p) = self.attrs.position(a) else {
            return false;
        };
        let (cur_lo, cur_hi) = self.ranges[p];
        let (new_lo, new_hi) = (cur_lo.max(lo), cur_hi.min(hi));
        if new_lo > new_hi {
            return false;
        }
        self.ranges[p] = (new_lo, new_hi);
        true
    }

    /// Number of integer points in the box (`Π (hi − lo + 1)`), saturating.
    #[must_use]
    pub fn volume(&self) -> u64 {
        self.ranges.iter().map(|&(lo, hi)| u64::from(hi - lo) + 1).fold(1u64, u64::saturating_mul)
    }

    /// Volume restricted to the attributes in `sub` (unconstrained
    /// attributes contribute factor 1).
    #[must_use]
    pub fn volume_over(&self, sub: &AttrSet) -> u64 {
        self.attrs
            .iter()
            .zip(&self.ranges)
            .filter(|(a, _)| sub.contains(*a))
            .map(|(_, &(lo, hi))| u64::from(hi - lo) + 1)
            .fold(1u64, u64::saturating_mul)
    }

    /// `true` if the point (aligned with this box's attrs) lies inside.
    #[must_use]
    pub fn contains_point(&self, point: &[u32]) -> bool {
        debug_assert_eq!(point.len(), self.ranges.len());
        point.iter().zip(&self.ranges).all(|(&v, &(lo, hi))| v >= lo && v <= hi)
    }

    /// `true` if `other`'s ranges (over *shared* attributes) contain this
    /// box's ranges; attributes not shared are ignored.
    #[must_use]
    pub fn contained_in_along_shared(&self, other: &BoundingBox) -> bool {
        for (a, &(lo, hi)) in self.attrs.iter().zip(&self.ranges) {
            if let Some((olo, ohi)) = other.range(a) {
                if lo < olo || hi > ohi {
                    return false;
                }
            }
        }
        true
    }

    /// The fraction of this box's volume that overlaps the conjunctive
    /// constraints `ranges` (attributes absent from the box are ignored;
    /// multiple constraints on one attribute intersect). Returns a value
    /// in `[0, 1]` — the uniformity weight of the paper's estimators.
    #[must_use]
    pub fn overlap_fraction(&self, ranges: &[(AttrId, u32, u32)]) -> f64 {
        let mut fraction = 1.0;
        for (a, &(lo, hi)) in self.attrs.iter().zip(&self.ranges) {
            let len = f64::from(hi - lo) + 1.0;
            let mut cur = (lo, hi);
            for &(ra, rlo, rhi) in ranges {
                if ra == a {
                    cur = (cur.0.max(rlo), cur.1.min(rhi));
                    if cur.0 > cur.1 {
                        return 0.0;
                    }
                }
            }
            let overlap = f64::from(cur.1 - cur.0) + 1.0;
            fraction *= overlap / len;
        }
        fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bx(ids: &[AttrId], ranges: &[(u32, u32)]) -> BoundingBox {
        BoundingBox::new(AttrSet::from_ids(ids.iter().copied()), ranges.to_vec())
    }

    #[test]
    fn volume_and_projected_volume() {
        let b = bx(&[0, 2], &[(0, 3), (5, 9)]);
        assert_eq!(b.volume(), 20);
        assert_eq!(b.volume_over(&AttrSet::singleton(0)), 4);
        assert_eq!(b.volume_over(&AttrSet::singleton(2)), 5);
        assert_eq!(b.volume_over(&AttrSet::singleton(7)), 1);
    }

    #[test]
    fn clamp_narrows_and_detects_empty() {
        let mut b = bx(&[0, 1], &[(0, 9), (0, 9)]);
        assert!(b.clamp(0, 3, 20));
        assert_eq!(b.range(0), Some((3, 9)));
        assert!(!b.clamp(0, 15, 20), "empty intersection refused");
        assert_eq!(b.range(0), Some((3, 9)), "box unchanged on failure");
        assert!(!b.clamp(5, 0, 1), "unknown attribute refused");
    }

    #[test]
    fn point_containment() {
        let b = bx(&[0, 1], &[(2, 4), (0, 1)]);
        assert!(b.contains_point(&[3, 1]));
        assert!(!b.contains_point(&[5, 0]));
        assert!(!b.contains_point(&[2, 2]));
    }

    #[test]
    fn shared_containment_ignores_missing_attrs() {
        let inner = bx(&[0, 1], &[(2, 3), (0, 0)]);
        let outer = bx(&[0, 5], &[(0, 9), (7, 8)]);
        assert!(inner.contained_in_along_shared(&outer));
        let tight = bx(&[0], &[(3, 3)]);
        assert!(!inner.contained_in_along_shared(&tight));
    }

    #[test]
    fn overlap_fraction_uniformity() {
        let b = bx(&[0, 1], &[(0, 9), (0, 3)]);
        // Half of dim 0, all of dim 1.
        assert!((b.overlap_fraction(&[(0, 0, 4)]) - 0.5).abs() < 1e-12);
        // Quarter of dim 1 only.
        assert!((b.overlap_fraction(&[(1, 2, 2)]) - 0.25).abs() < 1e-12);
        // Conjunction multiplies; constraints on absent attrs are ignored.
        let f = b.overlap_fraction(&[(0, 0, 4), (1, 2, 2), (9, 0, 0)]);
        assert!((f - 0.125).abs() < 1e-12);
        // Disjoint constraint zeroes out.
        assert_eq!(b.overlap_fraction(&[(0, 50, 60)]), 0.0);
        // Two constraints on one attribute intersect.
        assert!((b.overlap_fraction(&[(0, 0, 6), (0, 4, 9)]) - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "inverted range")]
    fn inverted_range_rejected() {
        let _ = bx(&[0], &[(5, 2)]);
    }
}
