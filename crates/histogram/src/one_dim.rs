//! One-dimensional bucketized histograms.
//!
//! These are the classic histograms of Poosala et al. \[19\] used by the
//! paper's `IND` baseline: each attribute gets a histogram over its
//! marginal frequency distribution, and joint frequencies are estimated
//! under full independence. Buckets hold consecutive attribute values and
//! assume uniform frequency within (paper §2.1).
//!
//! [`OneDimBuilder`] grows a histogram one split at a time, which is the
//! shape the `IncrementalGains` space-allocation algorithm needs: it can
//! *peek* at the error improvement of the next split before committing.

use dbhist_distribution::{AttrId, Distribution};

use crate::criterion::{best_split, sse, SplitCriterion};
use crate::error::HistogramError;

/// A single bucket: an inclusive value range with its total frequency and
/// the count of distinct values observed inside.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Bucket1 {
    /// Smallest attribute value in the bucket.
    pub lo: u32,
    /// Largest attribute value in the bucket (inclusive).
    pub hi: u32,
    /// Total frequency of the bucket.
    pub freq: f64,
}

impl Bucket1 {
    /// Number of integer points spanned.
    #[must_use]
    pub fn width(&self) -> u64 {
        u64::from(self.hi - self.lo) + 1
    }
}

/// A one-dimensional histogram over one attribute's marginal distribution.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OneDimHistogram {
    attr: AttrId,
    buckets: Vec<Bucket1>,
    total: f64,
}

impl Default for OneDimHistogram {
    /// An empty histogram over attribute `0`: no buckets, zero mass.
    fn default() -> Self {
        Self { attr: 0, buckets: Vec::new(), total: 0.0 }
    }
}

impl OneDimHistogram {
    /// Builds a histogram with at most `max_buckets` buckets over the
    /// marginal of `attr` within `dist`, using `criterion` to place
    /// boundaries.
    ///
    /// # Errors
    ///
    /// Returns [`HistogramError::InvalidRequest`] for a zero bucket budget
    /// or an attribute absent from the distribution.
    pub fn build(
        dist: &Distribution,
        attr: AttrId,
        max_buckets: usize,
        criterion: SplitCriterion,
    ) -> Result<Self, HistogramError> {
        let mut builder = OneDimBuilder::new(dist, attr, criterion)?;
        if max_buckets == 0 {
            return Err(HistogramError::InvalidRequest {
                reason: "bucket budget must be positive".into(),
            });
        }
        while builder.bucket_count() < max_buckets && builder.split_once() {}
        Ok(builder.finish())
    }

    /// Builds an **equi-width** histogram: the value span is divided into
    /// `buckets` ranges of (nearly) equal width. The classic pre-MaxDiff
    /// scheme, retained for comparison.
    ///
    /// # Errors
    ///
    /// Returns [`HistogramError::InvalidRequest`] for a zero bucket budget
    /// or an attribute absent from the distribution.
    pub fn build_equi_width(
        dist: &Distribution,
        attr: AttrId,
        buckets: usize,
    ) -> Result<Self, HistogramError> {
        let values = validated_values(dist, attr, buckets)?;
        let lo = values[0].0;
        let hi = values[values.len() - 1].0;
        let span = u64::from(hi - lo) + 1;
        let buckets = buckets.min(span as usize);
        let mut out: Vec<Bucket1> = Vec::with_capacity(buckets);
        for b in 0..buckets as u64 {
            let blo = lo + (b * span / buckets as u64) as u32;
            let bhi = lo + ((b + 1) * span / buckets as u64) as u32 - 1;
            let freq = values.iter().filter(|&&(v, _)| v >= blo && v <= bhi).map(|&(_, f)| f).sum();
            out.push(Bucket1 { lo: blo, hi: bhi, freq });
        }
        let total = out.iter().map(|b| b.freq).sum();
        Ok(Self { attr, buckets: out, total })
    }

    /// Builds an **equi-depth** histogram: bucket boundaries are chosen so
    /// every bucket holds (nearly) the same frequency mass.
    ///
    /// # Errors
    ///
    /// Returns [`HistogramError::InvalidRequest`] for a zero bucket budget
    /// or an attribute absent from the distribution.
    pub fn build_equi_depth(
        dist: &Distribution,
        attr: AttrId,
        buckets: usize,
    ) -> Result<Self, HistogramError> {
        let values = validated_values(dist, attr, buckets)?;
        let buckets = buckets.min(values.len());
        let mut remaining_total: f64 = values.iter().map(|&(_, f)| f).sum();
        let mut out: Vec<Bucket1> = Vec::with_capacity(buckets);
        let mut acc = 0.0;
        let mut start = 0usize;
        for (i, &(v, f)) in values.iter().enumerate() {
            acc += f;
            let is_last_value = i + 1 == values.len();
            let remaining_buckets = buckets - out.len();
            let remaining_values = values.len() - i - 1;
            // Re-quota against what is left so early heavy buckets do not
            // starve the rest; force a close when the remaining values are
            // exactly enough for the remaining buckets.
            let quota = remaining_total / remaining_buckets as f64;
            let forced = remaining_values == remaining_buckets - 1;
            if is_last_value || forced || (acc >= quota * 0.999 && out.len() + 1 < buckets) {
                out.push(Bucket1 { lo: values[start].0, hi: v, freq: acc });
                remaining_total -= acc;
                acc = 0.0;
                start = i + 1;
                if out.len() == buckets {
                    break;
                }
            }
        }
        let total = out.iter().map(|b| b.freq).sum();
        Ok(Self { attr, buckets: out, total })
    }

    /// Assembles a histogram directly from pre-computed buckets, without
    /// consulting a [`Distribution`]. Buckets must be in ascending value
    /// order, pairwise disjoint, with `lo <= hi` and finite non-negative
    /// frequencies.
    ///
    /// This is the entry point for callers that bucketize a stream
    /// themselves — notably the telemetry crate's latency histograms,
    /// which reuse this type (and [`OneDimHistogram::percentile`]) as
    /// their snapshot representation.
    ///
    /// # Errors
    ///
    /// Returns [`HistogramError::InvalidRequest`] if the buckets are
    /// unsorted, overlapping, inverted, or carry non-finite or negative
    /// frequencies.
    pub fn from_buckets(attr: AttrId, buckets: Vec<Bucket1>) -> Result<Self, HistogramError> {
        for b in &buckets {
            if b.lo > b.hi {
                return Err(HistogramError::InvalidRequest {
                    reason: format!("inverted bucket [{}, {}]", b.lo, b.hi),
                });
            }
            if !b.freq.is_finite() || b.freq < 0.0 {
                return Err(HistogramError::InvalidRequest {
                    reason: format!("bucket frequency {} must be finite and >= 0", b.freq),
                });
            }
        }
        for w in buckets.windows(2) {
            if w[1].lo <= w[0].hi {
                return Err(HistogramError::InvalidRequest {
                    reason: format!(
                        "buckets must be sorted and disjoint: [{}, {}] then [{}, {}]",
                        w[0].lo, w[0].hi, w[1].lo, w[1].hi
                    ),
                });
            }
        }
        let total = buckets.iter().map(|b| b.freq).sum();
        Ok(Self { attr, buckets, total })
    }

    /// The value below which `q` percent of the total mass falls, under
    /// the same intra-bucket uniformity assumption as
    /// [`OneDimHistogram::estimate_range`]. `None` when `q` is outside
    /// `[0, 100]` or the histogram holds no mass.
    #[must_use]
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if !(0.0..=100.0).contains(&q) || self.total <= 0.0 {
            return None;
        }
        let target = self.total * q / 100.0;
        let mut acc = 0.0;
        for b in &self.buckets {
            if acc + b.freq >= target {
                let need = (target - acc).max(0.0);
                let fraction = if b.freq > 0.0 { need / b.freq } else { 0.0 };
                return Some(f64::from(b.lo) + fraction * b.width() as f64);
            }
            acc += b.freq;
        }
        self.buckets.last().map(|b| f64::from(b.hi) + 1.0)
    }

    /// The attribute this histogram covers.
    #[must_use]
    pub fn attr(&self) -> AttrId {
        self.attr
    }

    /// The buckets in ascending value order.
    #[must_use]
    pub fn buckets(&self) -> &[Bucket1] {
        &self.buckets
    }

    /// Number of buckets `b`.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Total frequency mass `N` of the underlying marginal.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Estimated frequency mass in the inclusive range `[lo, hi]` under
    /// intra-bucket uniformity.
    ///
    /// Buckets are sorted and disjoint (every constructor guarantees it),
    /// so the scan binary-searches to the first bucket that can overlap
    /// and stops at the first past the range — `O(log b + touched)`
    /// instead of `O(b)`. The overlapping buckets are visited in exactly
    /// the order the full scan visited them, so the accumulated mass is
    /// bit-identical to the linear version.
    #[must_use]
    pub fn estimate_range(&self, lo: u32, hi: u32) -> f64 {
        if lo > hi {
            return 0.0;
        }
        let first = self.buckets.partition_point(|b| b.hi < lo);
        let mut mass = 0.0;
        for b in &self.buckets[first..] {
            if b.lo > hi {
                break;
            }
            let olo = b.lo.max(lo);
            let ohi = b.hi.min(hi);
            let fraction = (f64::from(ohi - olo) + 1.0) / b.width() as f64;
            mass += b.freq * fraction;
        }
        mass
    }

    /// Precomputes the cumulative-mass aggregate over this histogram's
    /// buckets; see [`PrefixSums`].
    #[must_use]
    pub fn prefix_sums(&self) -> PrefixSums {
        PrefixSums::new(self)
    }

    /// Estimated frequency of a single value.
    #[must_use]
    pub fn estimate_point(&self, v: u32) -> f64 {
        self.estimate_range(v, v)
    }

    /// Storage footprint in bytes under the paper's accounting (§4.1):
    /// 4 bytes per bucket separator + 4 bytes per bucket frequency = `8b`.
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        8 * self.buckets.len()
    }
}

/// Cumulative bucket-mass aggregate over a [`OneDimHistogram`], giving
/// O(1) whole-bucket range sums and O(log b) value lookups.
///
/// `sums[i]` is the total mass of buckets `0..i` accumulated left to
/// right, so a contiguous bucket run `i..j` aggregates as
/// `sums[j] - sums[i]`.
///
/// **Summation-order note:** subtraction of two prefix sums is *not*
/// bit-identical to summing the run's buckets directly, so this aggregate
/// is for analytics and monitoring surfaces (totals, cumulative-share
/// curves), never for the estimate path — estimates go through
/// [`OneDimHistogram::estimate_range`], whose windowed scan keeps the
/// exact per-bucket summation order (DESIGN.md §15, summation-order
/// contract).
#[derive(Debug, Clone, PartialEq)]
pub struct PrefixSums {
    /// Bucket boundaries, copied so lookups need no histogram reference.
    edges: Vec<(u32, u32)>,
    /// `sums[i]` = mass of buckets `0..i`; length `b + 1`.
    sums: Vec<f64>,
}

impl PrefixSums {
    /// Builds the aggregate from `hist`'s buckets.
    #[must_use]
    pub fn new(hist: &OneDimHistogram) -> Self {
        let mut sums = Vec::with_capacity(hist.buckets.len() + 1);
        let mut acc = 0.0;
        sums.push(acc);
        for b in &hist.buckets {
            acc += b.freq;
            sums.push(acc);
        }
        Self { edges: hist.buckets.iter().map(|b| (b.lo, b.hi)).collect(), sums }
    }

    /// Number of buckets the aggregate covers.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.edges.len()
    }

    /// Total mass of buckets `0..i` (clamped to the bucket count).
    #[must_use]
    pub fn cumulative(&self, i: usize) -> f64 {
        self.sums[i.min(self.edges.len())]
    }

    /// Total mass of the contiguous bucket run `lo..hi` in O(1).
    #[must_use]
    pub fn run_sum(&self, lo: usize, hi: usize) -> f64 {
        let hi = hi.min(self.edges.len());
        let lo = lo.min(hi);
        self.sums[hi] - self.sums[lo]
    }

    /// Total mass of every bucket that lies entirely below value `v`,
    /// found by binary search in O(log b).
    #[must_use]
    pub fn mass_below(&self, v: u32) -> f64 {
        let i = self.edges.partition_point(|&(_, hi)| hi < v);
        self.sums[i]
    }
}

/// Shared validation: positive budget, attribute present, non-empty data.
fn validated_values(
    dist: &Distribution,
    attr: AttrId,
    buckets: usize,
) -> Result<Vec<(u32, f64)>, HistogramError> {
    if buckets == 0 {
        return Err(HistogramError::InvalidRequest {
            reason: "bucket budget must be positive".into(),
        });
    }
    if !dist.attrs().contains(attr) {
        return Err(HistogramError::InvalidRequest {
            reason: format!("attribute {attr} not in the distribution"),
        });
    }
    let values = dist.values_along(attr);
    if values.is_empty() {
        return Err(HistogramError::InvalidRequest {
            reason: "cannot build a histogram over an empty distribution".into(),
        });
    }
    Ok(values)
}

/// Incremental builder for [`OneDimHistogram`].
#[derive(Debug, Clone)]
pub struct OneDimBuilder {
    attr: AttrId,
    criterion: SplitCriterion,
    /// Sorted distinct `(value, frequency)` pairs of the marginal.
    values: Vec<(u32, f64)>,
    /// Bucket boundaries as index ranges into `values`: bucket `i` covers
    /// `values[bounds[i]..bounds[i + 1]]`.
    bounds: Vec<usize>,
}

impl OneDimBuilder {
    /// Starts a builder with a single all-encompassing bucket.
    ///
    /// # Errors
    ///
    /// Returns [`HistogramError::InvalidRequest`] if `attr` is not one of
    /// `dist`'s attributes or the distribution is empty.
    pub fn new(
        dist: &Distribution,
        attr: AttrId,
        criterion: SplitCriterion,
    ) -> Result<Self, HistogramError> {
        if !dist.attrs().contains(attr) {
            return Err(HistogramError::InvalidRequest {
                reason: format!("attribute {attr} not in the distribution"),
            });
        }
        let values = dist.values_along(attr);
        if values.is_empty() {
            return Err(HistogramError::InvalidRequest {
                reason: "cannot build a histogram over an empty distribution".into(),
            });
        }
        let bounds = vec![0, values.len()];
        Ok(Self { attr, criterion, values, bounds })
    }

    /// Current number of buckets.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Current total approximation error (sum over buckets of the SSE of
    /// member-value frequencies around the bucket mean).
    #[must_use]
    pub fn error(&self) -> f64 {
        self.bucket_ranges().map(|(lo, hi)| sse(&self.values[lo..hi])).sum()
    }

    fn bucket_ranges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.bounds.windows(2).map(|w| (w[0], w[1]))
    }

    /// The split the construction algorithm would perform next:
    /// `(bucket index, split value, criterion score)`. `None` when every
    /// bucket is a single value.
    #[must_use]
    pub fn peek_split(&self) -> Option<(usize, u32, f64)> {
        let mut best: Option<(usize, u32, f64)> = None;
        for (i, (lo, hi)) in self.bucket_ranges().enumerate() {
            if let Some(choice) = best_split(&self.values[lo..hi], self.criterion) {
                if best.is_none_or(|(_, _, s)| choice.score > s) {
                    best = Some((i, choice.value, choice.score));
                }
            }
        }
        best
    }

    /// The decrease in [`OneDimBuilder::error`] the next split would
    /// achieve. `None` when no split is possible.
    #[must_use]
    pub fn peek_gain(&self) -> Option<f64> {
        let (bucket, value, _) = self.peek_split()?;
        let (lo, hi) = (self.bounds[bucket], self.bounds[bucket + 1]);
        let run = &self.values[lo..hi];
        let mid = run.partition_point(|&(v, _)| v < value);
        Some(sse(run) - sse(&run[..mid]) - sse(&run[mid..]))
    }

    /// Applies the next split. Returns `false` when no split is possible.
    pub fn split_once(&mut self) -> bool {
        let Some((bucket, value, _)) = self.peek_split() else {
            return false;
        };
        let (lo, hi) = (self.bounds[bucket], self.bounds[bucket + 1]);
        let mid = lo + self.values[lo..hi].partition_point(|&(v, _)| v < value);
        debug_assert!(mid > lo && mid < hi, "split must be interior");
        self.bounds.insert(bucket + 1, mid);
        true
    }

    /// Materializes the histogram.
    #[must_use]
    pub fn finish(&self) -> OneDimHistogram {
        let buckets: Vec<Bucket1> = self
            .bucket_ranges()
            .map(|(lo, hi)| Bucket1 {
                lo: self.values[lo].0,
                hi: self.values[hi - 1].0,
                freq: self.values[lo..hi].iter().map(|&(_, f)| f).sum(),
            })
            .collect();
        let total = buckets.iter().map(|b| b.freq).sum();
        OneDimHistogram { attr: self.attr, buckets, total }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbhist_distribution::{AttrSet, Relation, Schema};

    /// A skewed 1-D distribution: value v occurs (v+1)² times, v in 0..8.
    fn skewed() -> Distribution {
        let schema = Schema::new(vec![("x", 8)]).unwrap();
        let mut rows = Vec::new();
        for v in 0..8u32 {
            for _ in 0..(v + 1) * (v + 1) {
                rows.push(vec![v]);
            }
        }
        Relation::from_rows(schema, rows).unwrap().distribution()
    }

    #[test]
    fn build_respects_budget() {
        let d = skewed();
        for b in [1usize, 2, 4, 8, 100] {
            let h = OneDimHistogram::build(&d, 0, b, SplitCriterion::MaxDiff).unwrap();
            assert!(h.bucket_count() <= b.min(8));
            assert!((h.total() - d.total()).abs() < 1e-9, "mass conserved");
        }
        // Budget larger than distinct values saturates at 8 buckets.
        let h = OneDimHistogram::build(&d, 0, 100, SplitCriterion::MaxDiff).unwrap();
        assert_eq!(h.bucket_count(), 8);
    }

    #[test]
    fn invalid_requests() {
        let d = skewed();
        assert!(OneDimHistogram::build(&d, 0, 0, SplitCriterion::MaxDiff).is_err());
        assert!(OneDimHistogram::build(&d, 3, 4, SplitCriterion::MaxDiff).is_err());
    }

    #[test]
    fn exact_when_saturated() {
        // With one bucket per distinct value, estimates are exact.
        let d = skewed();
        let h = OneDimHistogram::build(&d, 0, 8, SplitCriterion::MaxDiff).unwrap();
        for v in 0..8u32 {
            let exact = f64::from((v + 1) * (v + 1));
            assert!((h.estimate_point(v) - exact).abs() < 1e-9);
        }
        assert!((h.estimate_range(0, 7) - d.total()).abs() < 1e-9);
        assert_eq!(h.estimate_range(5, 2), 0.0, "inverted range is empty");
    }

    #[test]
    fn uniformity_within_bucket() {
        let d = skewed();
        let h = OneDimHistogram::build(&d, 0, 1, SplitCriterion::MaxDiff).unwrap();
        assert_eq!(h.bucket_count(), 1);
        // A single bucket spreads total mass uniformly over its span.
        let per_value = d.total() / 8.0;
        assert!((h.estimate_point(0) - per_value).abs() < 1e-9);
        assert!((h.estimate_range(0, 3) - 4.0 * per_value).abs() < 1e-9);
    }

    #[test]
    fn error_decreases_with_splits() {
        let d = skewed();
        let mut b = OneDimBuilder::new(&d, 0, SplitCriterion::VOptimal).unwrap();
        let mut prev = b.error();
        while b.split_once() {
            let cur = b.error();
            assert!(cur <= prev + 1e-9, "error must not increase");
            prev = cur;
        }
        assert!(prev.abs() < 1e-9, "fully split histogram has zero error");
        assert_eq!(b.bucket_count(), 8);
    }

    #[test]
    fn peek_gain_matches_actual() {
        let d = skewed();
        let mut b = OneDimBuilder::new(&d, 0, SplitCriterion::MaxDiff).unwrap();
        while let Some(gain) = b.peek_gain() {
            let before = b.error();
            assert!(b.split_once());
            let actual = before - b.error();
            assert!((gain - actual).abs() < 1e-9);
        }
        assert!(!b.split_once());
    }

    #[test]
    fn storage_accounting() {
        let d = skewed();
        let h = OneDimHistogram::build(&d, 0, 4, SplitCriterion::MaxDiff).unwrap();
        assert_eq!(h.storage_bytes(), 8 * h.bucket_count());
    }

    #[test]
    fn equi_width_buckets_span_evenly() {
        let d = skewed();
        let h = OneDimHistogram::build_equi_width(&d, 0, 4).unwrap();
        assert_eq!(h.bucket_count(), 4);
        assert!((h.total() - d.total()).abs() < 1e-9);
        // Widths differ by at most one.
        let widths: Vec<u64> = h.buckets().iter().map(Bucket1::width).collect();
        let (min, max) = (widths.iter().min().unwrap(), widths.iter().max().unwrap());
        assert!(max - min <= 1, "{widths:?}");
        // Buckets tile the value span without gaps.
        for w in h.buckets().windows(2) {
            assert_eq!(w[1].lo, w[0].hi + 1);
        }
        // Over-budget saturates at the span.
        let h = OneDimHistogram::build_equi_width(&d, 0, 100).unwrap();
        assert_eq!(h.bucket_count(), 8);
    }

    #[test]
    fn equi_depth_balances_mass() {
        let d = skewed();
        let h = OneDimHistogram::build_equi_depth(&d, 0, 4).unwrap();
        assert_eq!(h.bucket_count(), 4);
        assert!((h.total() - d.total()).abs() < 1e-9);
        // No bucket holds more than ~2x the ideal share plus the largest
        // single value (depth balancing cannot split a single value).
        let ideal = d.total() / 4.0;
        let max_single = 64.0; // (7+1)^2
        for b in h.buckets() {
            assert!(b.freq <= ideal + max_single, "{b:?}");
        }
    }

    #[test]
    fn classic_policies_validate_input() {
        let d = skewed();
        assert!(OneDimHistogram::build_equi_width(&d, 0, 0).is_err());
        assert!(OneDimHistogram::build_equi_width(&d, 7, 4).is_err());
        assert!(OneDimHistogram::build_equi_depth(&d, 0, 0).is_err());
        assert!(OneDimHistogram::build_equi_depth(&d, 7, 4).is_err());
    }

    #[test]
    fn windowed_range_scan_matches_linear_reference() {
        let d = skewed();
        for nb in [1usize, 2, 3, 5, 8] {
            let h = OneDimHistogram::build(&d, 0, nb, SplitCriterion::MaxDiff).unwrap();
            for lo in 0..8u32 {
                for hi in 0..8u32 {
                    // The pre-windowing linear scan, verbatim.
                    let mut reference = 0.0;
                    if lo <= hi {
                        for b in h.buckets() {
                            if b.hi < lo || b.lo > hi {
                                continue;
                            }
                            let olo = b.lo.max(lo);
                            let ohi = b.hi.min(hi);
                            reference += b.freq * ((f64::from(ohi - olo) + 1.0) / b.width() as f64);
                        }
                    }
                    assert_eq!(h.estimate_range(lo, hi).to_bits(), reference.to_bits());
                }
            }
        }
    }

    #[test]
    fn prefix_sums_aggregate() {
        let d = skewed();
        let h = OneDimHistogram::build(&d, 0, 4, SplitCriterion::MaxDiff).unwrap();
        let ps = h.prefix_sums();
        assert_eq!(ps.bucket_count(), h.bucket_count());
        assert!((ps.cumulative(h.bucket_count()) - h.total()).abs() < 1e-9);
        assert_eq!(ps.cumulative(0), 0.0);
        // run_sum agrees with direct bucket sums (within float error; the
        // subtraction form is documented as not bit-path).
        for i in 0..=h.bucket_count() {
            for j in i..=h.bucket_count() {
                let direct: f64 = h.buckets()[i..j].iter().map(|b| b.freq).sum();
                assert!((ps.run_sum(i, j) - direct).abs() < 1e-9);
            }
        }
        // mass_below(v) = mass of buckets ending before v.
        for v in 0..9u32 {
            let direct: f64 = h.buckets().iter().filter(|b| b.hi < v).map(|b| b.freq).sum();
            assert!((ps.mass_below(v) - direct).abs() < 1e-9);
        }
        // Out-of-range indices clamp instead of panicking.
        assert!((ps.run_sum(0, 99) - h.total()).abs() < 1e-9);
        assert!((ps.cumulative(99) - h.total()).abs() < 1e-9);
    }

    #[test]
    fn works_on_multidim_marginal() {
        let schema = Schema::new(vec![("a", 4), ("b", 6)]).unwrap();
        let rows: Vec<Vec<u32>> = (0..240u32).map(|i| vec![i % 4, (i / 4) % 6]).collect();
        let rel = Relation::from_rows(schema, rows).unwrap();
        let joint = rel.distribution();
        let h = OneDimHistogram::build(&joint, 1, 3, SplitCriterion::MaxDiff).unwrap();
        assert_eq!(h.attr(), 1);
        assert!((h.total() - 240.0).abs() < 1e-9);
        let exact = rel.marginal(&AttrSet::singleton(1)).unwrap();
        // Uniform marginal: even a 3-bucket histogram is exact.
        for v in 0..6u32 {
            assert!((h.estimate_point(v) - exact.frequency(&[v])).abs() < 1e-9);
        }
    }
}
