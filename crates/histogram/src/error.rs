//! Error types for histogram construction and operators.

use std::fmt;

use dbhist_distribution::AttrId;

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HistogramError {
    /// A histogram was requested over an empty attribute set or with a
    /// zero bucket budget.
    InvalidRequest {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A projection requested attributes not covered by the histogram.
    NotASubset {
        /// The first requested attribute that is missing.
        missing: AttrId,
    },
    /// Two histograms passed to `product` disagree on a shared attribute's
    /// domain bounds, or belong to different schemas.
    IncompatibleOperands {
        /// Human-readable description of the mismatch.
        reason: String,
    },
    /// A decode failed: the byte stream is truncated or malformed.
    Codec {
        /// Human-readable description of the failure.
        reason: String,
    },
}

impl fmt::Display for HistogramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidRequest { reason } => write!(f, "invalid histogram request: {reason}"),
            Self::NotASubset { missing } => {
                write!(f, "projection attribute {missing} not covered by the histogram")
            }
            Self::IncompatibleOperands { reason } => {
                write!(f, "incompatible histogram operands: {reason}")
            }
            Self::Codec { reason } => write!(f, "histogram codec error: {reason}"),
        }
    }
}

impl std::error::Error for HistogramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(HistogramError::NotASubset { missing: 3 }.to_string().contains('3'));
        assert!(HistogramError::InvalidRequest { reason: "zero buckets".into() }
            .to_string()
            .contains("zero buckets"));
        assert!(HistogramError::IncompatibleOperands { reason: "domains".into() }
            .to_string()
            .contains("domains"));
        assert!(HistogramError::Codec { reason: "truncated".into() }
            .to_string()
            .contains("truncated"));
    }
}
