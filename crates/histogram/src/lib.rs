//! Histogram structures for dependency-based synopses (paper §3.2–§3.3.2).
//!
//! This crate provides every histogram family the paper's evaluation uses:
//!
//! * [`one_dim::OneDimHistogram`] — classic bucketized one-dimensional
//!   histograms (EquiWidth / EquiDepth / MaxDiff / V-Optimal), the building
//!   block of the `IND` full-independence baseline.
//! * [`mhist::SplitTree`] — multi-dimensional MHIST histograms in the
//!   paper's novel space-efficient *split tree* representation (`3b − 2`
//!   stored numbers for `b` buckets instead of `b(2n+1)`), built with the
//!   MHIST-2 greedy of Poosala & Ioannidis, plus the paper's
//!   `restrictNode` / `project` (Fig. 4) / `product` (Fig. 5) operators
//!   that work *directly on split trees*.
//! * [`grid::GridHistogram`] — rectangular `p × q × ...` array
//!   partitionings with straightforward projection/multiplication,
//!   included (as in the paper) as a simple alternative clique-histogram
//!   type.
//!
//! All multi-dimensional histograms implement [`traits::MultiHistogram`],
//! whose workhorse is `mass_in_box`: the estimated frequency mass inside a
//! conjunctive range box under the intra-bucket uniformity assumption.
//! Range-selectivity estimation, projection weights, and product weights
//! all reduce to this primitive.
//!
//! [`codec`] provides exact byte accounting (and a binary wire format)
//! matching the paper's storage model: `9b` bytes for a `b`-bucket MHIST
//! split tree, `8b` bytes for one-dimensional histograms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bbox;
pub mod codec;
pub mod criterion;
pub mod error;
pub mod grid;
pub mod mhist;
pub mod one_dim;
pub mod traits;
pub mod wavelet;

pub use bbox::BoundingBox;
pub use criterion::SplitCriterion;
pub use error::HistogramError;
pub use grid::GridHistogram;
pub use mhist::{IndexLayout, SplitTree, TreeIndex};
pub use one_dim::{OneDimHistogram, PrefixSums};
pub use traits::MultiHistogram;
