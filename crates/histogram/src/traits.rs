//! A common interface over multi-dimensional histogram families.
//!
//! The DB-histogram machinery in `dbhist-core` (clique-histogram
//! construction, `ComputeMarginal`, selectivity estimation) is generic
//! over the histogram type used for clique marginals; the paper evaluates
//! MHIST split trees and mentions grid histograms as a simpler
//! alternative. [`MultiHistogram`] captures the operations those layers
//! need.

use dbhist_distribution::{AttrId, AttrSet};

use crate::codec::split_tree_bytes;
use crate::error::HistogramError;
use crate::grid::GridHistogram;
use crate::mhist::SplitTree;

/// Operations a clique-histogram implementation must provide.
pub trait MultiHistogram: Sized + Clone {
    /// The attributes the histogram covers.
    fn attrs(&self) -> &AttrSet;

    /// Total frequency mass.
    fn total(&self) -> f64;

    /// Number of buckets.
    fn bucket_count(&self) -> usize;

    /// Estimated frequency mass inside a conjunction of inclusive ranges
    /// under intra-bucket uniformity. Constraints on attributes the
    /// histogram does not cover are ignored.
    fn mass_in_box(&self, ranges: &[(AttrId, u32, u32)]) -> f64;

    /// Projects onto a non-empty subset of the covered attributes
    /// (the paper's `project`).
    ///
    /// # Errors
    ///
    /// Implementations reject empty or non-subset targets.
    fn project(&self, attrs: &AttrSet) -> Result<Self, HistogramError>;

    /// Multiplies with another histogram via the separation formula
    /// `f_{Ci∪Cj} = f_{Ci} · f_{Cj} / f_{Ci∩Cj}` (the paper's `product`).
    ///
    /// # Errors
    ///
    /// Implementations reject operands with incompatible shared domains.
    fn product(&self, other: &Self) -> Result<Self, HistogramError>;

    /// Borrow-friendly projection: identity projections return
    /// `Cow::Borrowed(self)` without rebuilding anything; proper
    /// projections materialize as usual. Plan-based executors use this to
    /// keep zero-clone pass-throughs on the common single-clique path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MultiHistogram::project`].
    fn project_cow<'a>(
        &'a self,
        attrs: &AttrSet,
    ) -> Result<std::borrow::Cow<'a, Self>, HistogramError> {
        if self.attrs() == attrs {
            Ok(std::borrow::Cow::Borrowed(self))
        } else {
            Ok(std::borrow::Cow::Owned(self.project(attrs)?))
        }
    }

    /// Storage footprint in bytes under the paper's accounting.
    fn storage_bytes(&self) -> usize;
}

impl MultiHistogram for SplitTree {
    fn attrs(&self) -> &AttrSet {
        SplitTree::attrs(self)
    }

    fn total(&self) -> f64 {
        SplitTree::total(self)
    }

    fn bucket_count(&self) -> usize {
        SplitTree::bucket_count(self)
    }

    fn mass_in_box(&self, ranges: &[(AttrId, u32, u32)]) -> f64 {
        SplitTree::mass_in_box(self, ranges)
    }

    fn project(&self, attrs: &AttrSet) -> Result<Self, HistogramError> {
        SplitTree::project(self, attrs)
    }

    fn product(&self, other: &Self) -> Result<Self, HistogramError> {
        SplitTree::product(self, other)
    }

    fn storage_bytes(&self) -> usize {
        split_tree_bytes(self.bucket_count())
    }
}

impl MultiHistogram for GridHistogram {
    fn attrs(&self) -> &AttrSet {
        GridHistogram::attrs(self)
    }

    fn total(&self) -> f64 {
        GridHistogram::total(self)
    }

    fn bucket_count(&self) -> usize {
        GridHistogram::bucket_count(self)
    }

    fn mass_in_box(&self, ranges: &[(AttrId, u32, u32)]) -> f64 {
        GridHistogram::mass_in_box(self, ranges)
    }

    fn project(&self, attrs: &AttrSet) -> Result<Self, HistogramError> {
        GridHistogram::project(self, attrs)
    }

    fn product(&self, other: &Self) -> Result<Self, HistogramError> {
        GridHistogram::product(self, other)
    }

    fn storage_bytes(&self) -> usize {
        GridHistogram::storage_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::criterion::SplitCriterion;
    use crate::grid::GridBuilder;
    use crate::mhist::MhistBuilder;
    use dbhist_distribution::{Relation, Schema};

    fn dist() -> dbhist_distribution::Distribution {
        let schema = Schema::new(vec![("x", 8), ("y", 8)]).unwrap();
        let rows: Vec<Vec<u32>> = (0..256u32).map(|i| vec![i % 8, (i / 8) % 8]).collect();
        Relation::from_rows(schema, rows).unwrap().distribution()
    }

    /// Both histogram families behave identically through the trait on a
    /// uniform distribution (where both are exact).
    fn check<H: MultiHistogram>(h: &H) {
        assert_eq!(h.attrs(), &AttrSet::from_ids([0, 1]));
        assert!((h.total() - 256.0).abs() < 1e-9);
        assert!(h.bucket_count() >= 1);
        assert!(h.storage_bytes() > 0);
        assert!((h.mass_in_box(&[(0, 0, 3)]) - 128.0).abs() < 1e-9);
        let p = h.project(&AttrSet::singleton(1)).unwrap();
        assert!((p.total() - 256.0).abs() < 1e-9);
        assert!(p.product(&p.project(&AttrSet::singleton(1)).unwrap()).is_ok());
        // Borrow-friendly projection: identity borrows, proper owns.
        let same = h.project_cow(h.attrs()).unwrap();
        assert!(matches!(same, std::borrow::Cow::Borrowed(_)));
        let proj = h.project_cow(&AttrSet::singleton(0)).unwrap();
        assert!(matches!(proj, std::borrow::Cow::Owned(_)));
        assert!((proj.total() - 256.0).abs() < 1e-9);
    }

    #[test]
    fn trait_object_parity() {
        let d = dist();
        check(&MhistBuilder::build(&d, 8, SplitCriterion::MaxDiff).unwrap());
        check(&GridBuilder::build(&d, 8, SplitCriterion::MaxDiff).unwrap());
    }
}
