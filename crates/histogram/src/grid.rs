//! Grid histograms (paper §3.2).
//!
//! A [`GridHistogram`] generalizes `p × q` rectangular array partitionings
//! to arbitrary dimensionality: each dimension carries a list of interior
//! boundaries and the buckets form the full cartesian grid of the per-dim
//! cells. Construction greedily partitions *the entire data distribution*
//! along the dimension most in need of partitioning; note that one split
//! therefore introduces a whole slab of new buckets (the paper points out
//! the resulting "piecewise constant" error curves in the space-allocation
//! discussion).
//!
//! The projection and multiplication operators are straightforward on this
//! representation — the paper's stated reason for including grid
//! histograms in the study — and serve as an independent cross-check of
//! the split-tree operators.

use dbhist_distribution::{AttrId, AttrSet, Distribution};

use crate::bbox::BoundingBox;
use crate::criterion::{best_split_bounded, SplitCriterion};
use crate::error::HistogramError;

/// A multi-dimensional rectangular-grid histogram.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GridHistogram {
    attrs: AttrSet,
    domain: BoundingBox,
    /// Per-attribute sorted interior boundaries: boundary `b` separates
    /// values `< b` from values `≥ b`.
    boundaries: Vec<Vec<u32>>,
    /// Row-major bucket frequencies over the per-dimension cell grid.
    freqs: Vec<f64>,
    total: f64,
}

impl GridHistogram {
    /// The attributes the histogram covers.
    #[must_use]
    pub fn attrs(&self) -> &AttrSet {
        &self.attrs
    }

    /// The full-domain bounding box.
    #[must_use]
    pub fn domain(&self) -> &BoundingBox {
        &self.domain
    }

    /// Total frequency mass.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of buckets (`Π_d (boundaries_d + 1)`).
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.freqs.len()
    }

    /// Per-attribute interior boundary lists (snapshot codec).
    pub(crate) fn boundaries(&self) -> &[Vec<u32>] {
        &self.boundaries
    }

    /// Row-major bucket frequencies (snapshot codec).
    pub(crate) fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Reassembles a grid histogram from snapshot parts, storing the
    /// cached total verbatim for bit-exact round trips. Unlike the other
    /// constructors — whose inputs are valid by construction — this one
    /// fully validates shape and values, since snapshot bytes are of
    /// unknown provenance.
    ///
    /// # Errors
    ///
    /// Returns [`HistogramError::Codec`] if the parts violate any grid
    /// invariant.
    pub(crate) fn from_parts_with_total(
        attrs: AttrSet,
        domain: BoundingBox,
        boundaries: Vec<Vec<u32>>,
        freqs: Vec<f64>,
        total: f64,
    ) -> Result<Self, HistogramError> {
        let codec = |reason: String| HistogramError::Codec { reason };
        if domain.attrs() != &attrs || boundaries.len() != attrs.len() {
            return Err(codec("grid parts are not aligned with the attribute set".into()));
        }
        for (p, bs) in boundaries.iter().enumerate() {
            let (dlo, dhi) = domain.ranges()[p];
            if !bs.windows(2).all(|w| w[0] < w[1]) {
                return Err(codec(format!("dimension {p} boundaries are not strictly ascending")));
            }
            if bs.iter().any(|&b| b <= dlo || b > dhi) {
                return Err(codec(format!("dimension {p} has a boundary outside its domain")));
            }
        }
        let cells: usize = boundaries.iter().map(|b| b.len() + 1).product();
        if freqs.len() != cells {
            return Err(codec(format!("{} frequencies for a {cells}-cell grid", freqs.len())));
        }
        if freqs.iter().any(|f| !f.is_finite() || *f < 0.0) || !total.is_finite() {
            return Err(codec("grid frequencies must be finite and non-negative".into()));
        }
        Ok(Self { attrs, domain, boundaries, freqs, total })
    }

    /// Per-dimension cell counts.
    fn dims(&self) -> Vec<usize> {
        self.boundaries.iter().map(|b| b.len() + 1).collect()
    }

    /// The inclusive value range of cell `c` along dimension position `p`.
    fn cell_range(&self, p: usize, c: usize) -> (u32, u32) {
        let (dlo, dhi) = self.domain.ranges()[p];
        let lo = if c == 0 { dlo } else { self.boundaries[p][c - 1] };
        let hi = if c == self.boundaries[p].len() { dhi } else { self.boundaries[p][c] - 1 };
        (lo, hi)
    }

    /// Index of the cell containing value `v` along dimension position `p`.
    fn cell_of(&self, p: usize, v: u32) -> usize {
        self.boundaries[p].partition_point(|&b| b <= v)
    }

    /// Estimated frequency mass inside a conjunction of inclusive ranges
    /// under intra-bucket uniformity (attributes not covered are ignored).
    #[must_use]
    pub fn mass_in_box(&self, ranges: &[(AttrId, u32, u32)]) -> f64 {
        // Narrow per-dimension cell index ranges, then walk the sub-grid.
        let dims = self.dims();
        let mut cell_lo = vec![0usize; dims.len()];
        let mut cell_hi: Vec<usize> = dims.iter().map(|&d| d - 1).collect();
        let mut constraint: Vec<(u32, u32)> = self.domain.ranges().to_vec();
        for &(a, lo, hi) in ranges {
            if let Some(p) = self.attrs.position(a) {
                let c = &mut constraint[p];
                *c = (c.0.max(lo), c.1.min(hi));
                if c.0 > c.1 {
                    return 0.0;
                }
            }
        }
        for p in 0..dims.len() {
            cell_lo[p] = self.cell_of(p, constraint[p].0);
            cell_hi[p] = self.cell_of(p, constraint[p].1);
        }
        // Iterate the sub-grid accumulating overlap-weighted frequencies.
        let mut mass = 0.0;
        let mut idx = cell_lo.clone();
        loop {
            let mut flat = 0usize;
            let mut fraction = 1.0;
            for p in 0..dims.len() {
                flat = flat * dims[p] + idx[p];
                let (clo, chi) = self.cell_range(p, idx[p]);
                let olo = clo.max(constraint[p].0);
                let ohi = chi.min(constraint[p].1);
                fraction *= (f64::from(ohi - olo) + 1.0) / (f64::from(chi - clo) + 1.0);
            }
            mass += self.freqs[flat] * fraction;
            // Advance the odometer.
            let mut p = dims.len();
            loop {
                if p == 0 {
                    return mass;
                }
                p -= 1;
                if idx[p] < cell_hi[p] {
                    idx[p] += 1;
                    let tail = (p + 1)..dims.len();
                    idx[tail.clone()].copy_from_slice(&cell_lo[tail]);
                    break;
                }
            }
        }
    }

    /// Projects onto `attrs ⊆ self.attrs()` by summing out the dropped
    /// dimensions (exact — no uniformity assumption is needed).
    ///
    /// # Errors
    ///
    /// Returns [`HistogramError::NotASubset`] or
    /// [`HistogramError::InvalidRequest`] for invalid targets.
    pub fn project(&self, attrs: &AttrSet) -> Result<GridHistogram, HistogramError> {
        if attrs.is_empty() {
            return Err(HistogramError::InvalidRequest {
                reason: "cannot project onto the empty attribute set".into(),
            });
        }
        if let Some(missing) = attrs.iter().find(|&a| !self.attrs.contains(a)) {
            return Err(HistogramError::NotASubset { missing });
        }
        let keep: Vec<usize> = attrs
            .iter()
            .map(|a| self.attrs.position(a).ok_or(HistogramError::NotASubset { missing: a }))
            .collect::<Result<_, _>>()?;
        let dims = self.dims();
        let out_dims: Vec<usize> = keep.iter().map(|&p| dims[p]).collect();
        let mut out_freqs = vec![0.0; out_dims.iter().product::<usize>().max(1)];
        // Walk all buckets, fold into the projected grid.
        let mut idx = vec![0usize; dims.len()];
        for &f in &self.freqs {
            let mut flat = 0usize;
            for (k, &p) in keep.iter().enumerate() {
                flat = flat * out_dims[k] + idx[p];
            }
            out_freqs[flat] += f;
            let mut p = dims.len();
            loop {
                if p == 0 {
                    break;
                }
                p -= 1;
                if idx[p] + 1 < dims[p] {
                    idx[p] += 1;
                    idx[p + 1..].iter_mut().for_each(|x| *x = 0);
                    break;
                }
            }
        }
        let ranges: Vec<(u32, u32)> = keep.iter().map(|&p| self.domain.ranges()[p]).collect();
        Ok(GridHistogram {
            attrs: attrs.clone(),
            domain: BoundingBox::new(attrs.clone(), ranges),
            boundaries: keep.iter().map(|&p| self.boundaries[p].clone()).collect(),
            freqs: out_freqs,
            total: self.total,
        })
    }

    /// Multiplies two grid histograms via the separation formula
    /// `f_{Ci∪Cj} = f_{Ci} · f_{Cj} / f_{Ci∩Cj}` under uniformity. Shared
    /// dimensions use the union of both boundary sets.
    ///
    /// # Errors
    ///
    /// Returns [`HistogramError::IncompatibleOperands`] if shared
    /// attributes have different domains.
    pub fn product(&self, other: &GridHistogram) -> Result<GridHistogram, HistogramError> {
        let shared = self.attrs.intersection(&other.attrs);
        for a in shared.iter() {
            if self.domain.range(a) != other.domain.range(a) {
                return Err(HistogramError::IncompatibleOperands {
                    reason: format!("attribute {a} has different domains in the operands"),
                });
            }
        }
        let union = self.attrs.union(&other.attrs);
        let mut boundaries = Vec::with_capacity(union.len());
        let mut ranges = Vec::with_capacity(union.len());
        for a in union.iter() {
            let mine = self.attrs.position(a).map(|p| &self.boundaries[p]);
            let theirs = other.attrs.position(a).map(|p| &other.boundaries[p]);
            let merged = match (mine, theirs) {
                (Some(m), Some(t)) => {
                    let mut u = m.clone();
                    u.extend_from_slice(t);
                    u.sort_unstable();
                    u.dedup();
                    u
                }
                (Some(m), None) => m.clone(),
                (None, Some(t)) => t.clone(),
                (None, None) => {
                    return Err(HistogramError::IncompatibleOperands {
                        reason: format!("attribute {a} missing from both operand domains"),
                    })
                }
            };
            boundaries.push(merged);
            let Some(range) = self.domain.range(a).or_else(|| other.domain.range(a)) else {
                return Err(HistogramError::IncompatibleOperands {
                    reason: format!("attribute {a} has no domain range in either operand"),
                });
            };
            ranges.push(range);
        }
        let separator = if shared.is_empty() { None } else { Some(self.project(&shared)?) };
        let mut out = GridHistogram {
            attrs: union.clone(),
            domain: BoundingBox::new(union.clone(), ranges),
            boundaries,
            freqs: Vec::new(),
            total: 0.0,
        };
        let dims = out.dims();
        let mut freqs = vec![0.0; dims.iter().product::<usize>().max(1)];
        let mut idx = vec![0usize; dims.len()];
        for f in &mut freqs {
            // Build the bucket's ranges and apply the separation formula.
            let ranges: Vec<(AttrId, u32, u32)> = union
                .iter()
                .enumerate()
                .map(|(p, a)| {
                    let (lo, hi) = out.cell_range(p, idx[p]);
                    (a, lo, hi)
                })
                .collect();
            let fi = self.mass_in_box(&ranges);
            let fj = other.mass_in_box(&ranges);
            let fsep = match &separator {
                Some(sep) => sep.mass_in_box(&ranges),
                None => self.total,
            };
            *f = if fsep <= 0.0 { 0.0 } else { fi * fj / fsep };
            let mut p = dims.len();
            loop {
                if p == 0 {
                    break;
                }
                p -= 1;
                if idx[p] + 1 < dims[p] {
                    idx[p] += 1;
                    idx[p + 1..].iter_mut().for_each(|x| *x = 0);
                    break;
                }
            }
        }
        out.total = freqs.iter().sum();
        out.freqs = freqs;
        Ok(out)
    }

    /// Storage footprint in bytes: 4 bytes per bucket frequency plus
    /// 4 bytes per interior boundary value plus 1 byte per boundary for
    /// its dimension tag (this crate's accounting; the paper does not
    /// specify one for grids).
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        4 * self.freqs.len() + self.boundaries.iter().map(|b| 5 * b.len()).sum::<usize>()
    }
}

/// Incremental builder for [`GridHistogram`] (greedy whole-distribution
/// splits, paper §3.2).
#[derive(Debug, Clone)]
pub struct GridBuilder {
    attrs: AttrSet,
    domain: BoundingBox,
    criterion: SplitCriterion,
    /// Sorted `(value, marginal frequency)` per dimension.
    marginals: Vec<Vec<(u32, f64)>>,
    /// All non-zero cells of the source distribution.
    cells: Vec<(Vec<u32>, f64)>,
    boundaries: Vec<Vec<u32>>,
    total: f64,
}

impl GridBuilder {
    /// Starts a builder with the single all-encompassing bucket.
    ///
    /// # Errors
    ///
    /// Returns [`HistogramError::InvalidRequest`] for an empty distribution.
    pub fn new(dist: &Distribution, criterion: SplitCriterion) -> Result<Self, HistogramError> {
        let attrs = dist.attrs().clone();
        if attrs.is_empty() || dist.total() <= 0.0 {
            return Err(HistogramError::InvalidRequest {
                reason: "grid histograms need a non-empty distribution".into(),
            });
        }
        let ranges: Vec<(u32, u32)> =
            attrs.iter().map(|a| (0, dist.schema().domain_size(a) - 1)).collect();
        let marginals: Vec<Vec<(u32, f64)>> = attrs.iter().map(|a| dist.values_along(a)).collect();
        Ok(Self {
            domain: BoundingBox::new(attrs.clone(), ranges),
            boundaries: vec![Vec::new(); attrs.len()],
            cells: dist.iter().map(|(k, f)| (k.to_vec(), f)).collect(),
            total: dist.total(),
            attrs,
            criterion,
            marginals,
        })
    }

    /// Convenience: builds a grid histogram using at most `max_buckets`
    /// buckets.
    ///
    /// # Errors
    ///
    /// See [`GridBuilder::new`]; additionally rejects a zero budget.
    pub fn build(
        dist: &Distribution,
        max_buckets: usize,
        criterion: SplitCriterion,
    ) -> Result<GridHistogram, HistogramError> {
        if max_buckets == 0 {
            return Err(HistogramError::InvalidRequest {
                reason: "bucket budget must be positive".into(),
            });
        }
        let mut b = Self::new(dist, criterion)?;
        while let Some((_, _, extra)) = b.peek_split() {
            if b.bucket_count() + extra > max_buckets {
                break;
            }
            b.split_once();
        }
        Ok(b.finish())
    }

    /// Current number of buckets.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.boundaries.iter().map(|b| b.len() + 1).product()
    }

    /// The next split as `(dimension position, split value, extra buckets)`.
    /// Grid splits multiply: splitting dimension `d` adds
    /// `Π_{d' ≠ d} cells_{d'}` buckets.
    #[must_use]
    pub fn peek_split(&self) -> Option<(usize, u32, usize)> {
        let mut best: Option<(usize, u32, f64)> = None;
        for (p, marginal) in self.marginals.iter().enumerate() {
            // Evaluate the best split within each existing segment.
            let mut start = 0usize;
            let (dlo, dhi) = self.domain.ranges()[p];
            let bounds = &self.boundaries[p];
            for seg in 0..=bounds.len() {
                let end = if seg == bounds.len() {
                    marginal.len()
                } else {
                    marginal.partition_point(|&(v, _)| v < bounds[seg])
                };
                let seg_lo = if seg == 0 { dlo } else { bounds[seg - 1] };
                let seg_hi = if seg == bounds.len() { dhi } else { bounds[seg] - 1 };
                if let Some(choice) =
                    best_split_bounded(&marginal[start..end], seg_lo, seg_hi, self.criterion)
                {
                    if best.is_none_or(|(_, _, s)| choice.score > s) {
                        best = Some((p, choice.value, choice.score));
                    }
                }
                start = end;
            }
        }
        best.map(|(p, v, _)| {
            let extra: usize = self
                .boundaries
                .iter()
                .enumerate()
                .filter(|&(q, _)| q != p)
                .map(|(_, b)| b.len() + 1)
                .product();
            (p, v, extra)
        })
    }

    /// Applies the next split. Returns `false` when saturated.
    pub fn split_once(&mut self) -> bool {
        let Some((p, v, _)) = self.peek_split() else {
            return false;
        };
        let bounds = &mut self.boundaries[p];
        let pos = bounds.partition_point(|&b| b < v);
        bounds.insert(pos, v);
        true
    }

    /// Bytes the grid would occupy if finished now (4 per bucket + 5 per
    /// boundary, matching [`GridHistogram::storage_bytes`]) — computed
    /// arithmetically so allocation loops don't materialize the grid.
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        let boundaries: usize = self.boundaries.iter().map(Vec::len).sum();
        4 * self.bucket_count() + 5 * boundaries
    }

    /// Current total volume-aware SSE across buckets.
    #[must_use]
    pub fn error(&self) -> f64 {
        self.error_with(&self.boundaries)
    }

    /// The error decrease the next split would achieve.
    #[must_use]
    pub fn peek_gain(&self) -> Option<f64> {
        let (p, v, _) = self.peek_split()?;
        let mut trial = self.boundaries.clone();
        let pos = trial[p].partition_point(|&b| b < v);
        trial[p].insert(pos, v);
        Some(self.error() - self.error_with(&trial))
    }

    fn error_with(&self, boundaries: &[Vec<u32>]) -> f64 {
        let dims: Vec<usize> = boundaries.iter().map(|b| b.len() + 1).collect();
        let nb: usize = dims.iter().product();
        let mut sum = vec![0.0; nb];
        let mut sum_sq = vec![0.0; nb];
        let mut nnz = vec![0u64; nb];
        for (key, f) in &self.cells {
            let mut flat = 0usize;
            for (p, d) in dims.iter().enumerate() {
                let c = boundaries[p].partition_point(|&b| b <= key[p]);
                flat = flat * d + c;
            }
            sum[flat] += f;
            sum_sq[flat] += f * f;
            nnz[flat] += 1;
        }
        // Bucket volumes from cell ranges.
        let mut err = 0.0;
        let mut idx = vec![0usize; dims.len()];
        for b in 0..nb {
            let mut volume = 1.0f64;
            for p in 0..dims.len() {
                let (dlo, dhi) = self.domain.ranges()[p];
                let lo = if idx[p] == 0 { dlo } else { boundaries[p][idx[p] - 1] };
                let hi =
                    if idx[p] == boundaries[p].len() { dhi } else { boundaries[p][idx[p]] - 1 };
                volume *= f64::from(hi - lo) + 1.0;
            }
            // Volume-aware SSE: sum_sq − sum²/V.
            err += sum_sq[b] - sum[b] * sum[b] / volume;
            let mut p = dims.len();
            loop {
                if p == 0 {
                    break;
                }
                p -= 1;
                if idx[p] + 1 < dims[p] {
                    idx[p] += 1;
                    idx[p + 1..].iter_mut().for_each(|x| *x = 0);
                    break;
                }
            }
        }
        err
    }

    /// Materializes the grid histogram.
    #[must_use]
    pub fn finish(&self) -> GridHistogram {
        let dims: Vec<usize> = self.boundaries.iter().map(|b| b.len() + 1).collect();
        let mut freqs = vec![0.0; dims.iter().product::<usize>().max(1)];
        for (key, f) in &self.cells {
            let mut flat = 0usize;
            for (p, d) in dims.iter().enumerate() {
                let c = self.boundaries[p].partition_point(|&b| b <= key[p]);
                flat = flat * d + c;
            }
            freqs[flat] += f;
        }
        GridHistogram {
            attrs: self.attrs.clone(),
            domain: self.domain.clone(),
            boundaries: self.boundaries.clone(),
            freqs,
            total: self.total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbhist_distribution::{Relation, Schema};

    fn grid_relation() -> Relation {
        let schema = Schema::new(vec![("x", 8), ("y", 8)]).unwrap();
        let mut rows = Vec::new();
        for x in 0..8u32 {
            for y in 0..8u32 {
                for _ in 0..(x + 2 * y + 1) {
                    rows.push(vec![x, y]);
                }
            }
        }
        Relation::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn build_respects_budget_and_mass() {
        let dist = grid_relation().distribution();
        for budget in [1usize, 4, 9, 16, 64] {
            let g = GridBuilder::build(&dist, budget, SplitCriterion::MaxDiff).unwrap();
            assert!(g.bucket_count() <= budget);
            assert!((g.total() - dist.total()).abs() < 1e-9);
            assert!((g.mass_in_box(&[]) - dist.total()).abs() < 1e-9);
        }
    }

    #[test]
    fn saturated_grid_is_exact() {
        let rel = grid_relation();
        let dist = rel.distribution();
        let mut b = GridBuilder::new(&dist, SplitCriterion::MaxDiff).unwrap();
        while b.split_once() {}
        let g = b.finish();
        assert_eq!(g.bucket_count(), 64);
        assert!(b.error().abs() < 1e-9);
        for x in 0..8u32 {
            for y in 0..8u32 {
                let exact = f64::from(x + 2 * y + 1);
                assert!((g.mass_in_box(&[(0, x, x), (1, y, y)]) - exact).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn splits_multiply_buckets() {
        let dist = grid_relation().distribution();
        let mut b = GridBuilder::new(&dist, SplitCriterion::MaxDiff).unwrap();
        assert_eq!(b.bucket_count(), 1);
        let (_, _, extra) = b.peek_split().unwrap();
        assert_eq!(extra, 1, "first split adds one bucket");
        b.split_once();
        assert_eq!(b.bucket_count(), 2);
        // A split along the other dimension now doubles, along the same
        // dimension adds the count of the orthogonal cells.
        let before = b.bucket_count();
        let (_, _, extra) = b.peek_split().unwrap();
        b.split_once();
        assert_eq!(b.bucket_count(), before + extra);
    }

    #[test]
    fn error_monotone_and_peek_matches() {
        let dist = grid_relation().distribution();
        let mut b = GridBuilder::new(&dist, SplitCriterion::VOptimal).unwrap();
        for _ in 0..6 {
            let Some(gain) = b.peek_gain() else { break };
            let before = b.error();
            assert!(b.split_once());
            assert!((gain - (before - b.error())).abs() < 1e-9);
            assert!(gain >= -1e-9);
        }
    }

    #[test]
    fn project_is_exact_sum() {
        let rel = grid_relation();
        let dist = rel.distribution();
        let g = GridBuilder::build(&dist, 16, SplitCriterion::MaxDiff).unwrap();
        let px = g.project(&AttrSet::singleton(0)).unwrap();
        assert!((px.total() - g.total()).abs() < 1e-9);
        // Projection of a grid is exact on cell boundaries: compare a full
        // range with the true marginal mass.
        let exact = rel.marginal(&AttrSet::singleton(0)).unwrap();
        let direct: f64 = (0..4u32).map(|v| exact.frequency(&[v])).sum();
        let approx = px.mass_in_box(&[(0, 0, 3)]);
        let via_joint = g.mass_in_box(&[(0, 0, 3)]);
        assert!((approx - via_joint).abs() < 1e-9);
        // And both are decent estimates of the truth.
        assert!((approx - direct).abs() / direct < 0.35);
    }

    #[test]
    fn project_errors() {
        let dist = grid_relation().distribution();
        let g = GridBuilder::build(&dist, 4, SplitCriterion::MaxDiff).unwrap();
        assert!(g.project(&AttrSet::empty()).is_err());
        assert!(g.project(&AttrSet::singleton(9)).is_err());
    }

    #[test]
    fn product_disjoint_independence() {
        let schema = Schema::new(vec![("x", 4), ("y", 4)]).unwrap();
        let rows: Vec<Vec<u32>> = (0..160u32).map(|i| vec![i % 4, (i * 3) % 4]).collect();
        let rel = Relation::from_rows(schema, rows).unwrap();
        let gx = GridBuilder::build(
            &rel.marginal(&AttrSet::singleton(0)).unwrap(),
            4,
            SplitCriterion::MaxDiff,
        )
        .unwrap();
        let gy = GridBuilder::build(
            &rel.marginal(&AttrSet::singleton(1)).unwrap(),
            4,
            SplitCriterion::MaxDiff,
        )
        .unwrap();
        let prod = gx.product(&gy).unwrap();
        assert_eq!(prod.attrs(), &AttrSet::from_ids([0, 1]));
        assert!((prod.total() - 160.0).abs() < 1e-9);
        for x in 0..4u32 {
            for y in 0..4u32 {
                let got = prod.mass_in_box(&[(0, x, x), (1, y, y)]);
                assert!((got - 10.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn product_shared_dim_merges_boundaries() {
        // Two 2-attr grids sharing attribute 1.
        let schema = Schema::new(vec![("a", 4), ("b", 4), ("c", 4)]).unwrap();
        let rows: Vec<Vec<u32>> = (0..256u32).map(|i| vec![i % 4, i % 4, (i / 4) % 4]).collect();
        let rel = Relation::from_rows(schema, rows).unwrap();
        let gab = GridBuilder::build(
            &rel.marginal(&AttrSet::from_ids([0, 1])).unwrap(),
            16,
            SplitCriterion::MaxDiff,
        )
        .unwrap();
        let gbc = GridBuilder::build(
            &rel.marginal(&AttrSet::from_ids([1, 2])).unwrap(),
            16,
            SplitCriterion::MaxDiff,
        )
        .unwrap();
        let prod = gab.product(&gbc).unwrap();
        assert_eq!(prod.attrs(), &AttrSet::from_ids([0, 1, 2]));
        let n = 256.0;
        assert!((prod.total() - n).abs() / n < 0.05, "total {}", prod.total());
    }

    #[test]
    fn product_rejects_incompatible() {
        let s1 = Schema::new(vec![("x", 4)]).unwrap();
        let s2 = Schema::new(vec![("x", 8)]).unwrap();
        let r1 =
            Relation::from_rows(s1, (0..8u32).map(|i| vec![i % 4]).collect::<Vec<_>>()).unwrap();
        let r2 =
            Relation::from_rows(s2, (0..8u32).map(|i| vec![i % 8]).collect::<Vec<_>>()).unwrap();
        let g1 = GridBuilder::build(&r1.distribution(), 2, SplitCriterion::MaxDiff).unwrap();
        let g2 = GridBuilder::build(&r2.distribution(), 2, SplitCriterion::MaxDiff).unwrap();
        assert!(g1.product(&g2).is_err());
    }

    #[test]
    fn storage_accounting() {
        let dist = grid_relation().distribution();
        let g = GridBuilder::build(&dist, 8, SplitCriterion::MaxDiff).unwrap();
        let boundaries: usize = g.boundaries.iter().map(Vec::len).sum();
        assert_eq!(g.storage_bytes(), 4 * g.bucket_count() + 5 * boundaries);
    }
}
