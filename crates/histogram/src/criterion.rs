//! Histogram partitioning constraints (paper §3.2, \[19\]).
//!
//! Construction algorithms repeatedly split "the bucket (or distribution)
//! most in need of partitioning" along one dimension. The *criterion*
//! decides where: **MaxDiff** places a bucket boundary between the two
//! adjacent attribute values with the largest frequency difference, while
//! **V-Optimal** greedily maximizes the reduction in the sum of squared
//! errors (frequency variance) achieved by the split.

/// The split-selection rule used during histogram construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SplitCriterion {
    /// Split between the adjacent values with the largest frequency
    /// difference (the paper's experimental default).
    #[default]
    MaxDiff,
    /// Split to maximize the reduction in within-bucket frequency
    /// variance (greedy V-Optimal).
    VOptimal,
}

/// A proposed split point within a run of values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitChoice {
    /// The split value `v`: the left part holds values `< v`, the right
    /// part values `≥ v`. Always strictly inside the run, so both parts
    /// are non-empty.
    pub value: u32,
    /// The criterion's score (higher = more in need of partitioning).
    pub score: f64,
}

/// Finds the best split of a sorted run of distinct `(value, frequency)`
/// pairs under `criterion`. Returns `None` for runs with fewer than two
/// values (nothing to split).
#[must_use]
pub fn best_split(values: &[(u32, f64)], criterion: SplitCriterion) -> Option<SplitChoice> {
    if values.len() < 2 {
        return None;
    }
    debug_assert!(values.windows(2).all(|w| w[0].0 < w[1].0), "values must be sorted and distinct");
    match criterion {
        SplitCriterion::MaxDiff => {
            let mut best = SplitChoice { value: values[1].0, score: f64::NEG_INFINITY };
            for w in values.windows(2) {
                let score = (w[1].1 - w[0].1).abs();
                if score > best.score {
                    best = SplitChoice { value: w[1].0, score };
                }
            }
            Some(best)
        }
        SplitCriterion::VOptimal => {
            // Prefix sums of f and f² give O(1) SSE for any prefix/suffix.
            let n = values.len();
            let mut sum = vec![0.0; n + 1];
            let mut sum_sq = vec![0.0; n + 1];
            for (i, &(_, f)) in values.iter().enumerate() {
                sum[i + 1] = sum[i] + f;
                sum_sq[i + 1] = sum_sq[i] + f * f;
            }
            let sse = |lo: usize, hi: usize| -> f64 {
                // SSE of values[lo..hi].
                let k = (hi - lo) as f64;
                let s = sum[hi] - sum[lo];
                (sum_sq[hi] - sum_sq[lo]) - s * s / k
            };
            let total = sse(0, n);
            let mut best = SplitChoice { value: values[1].0, score: f64::NEG_INFINITY };
            for (i, &(value, _)) in values.iter().enumerate().skip(1) {
                let score = total - sse(0, i) - sse(i, n);
                if score > best.score {
                    best = SplitChoice { value, score };
                }
            }
            Some(best)
        }
    }
}

/// Like [`best_split`], but aware of the bucket's box `[lo, hi]` along the
/// dimension: in addition to boundaries between adjacent *present* values,
/// it proposes boundaries that trim *empty* domain regions (box margins
/// and interior gaps), treating absent positions as zero-frequency values.
///
/// This matters under the split-tree representation: bucket extents are
/// implied by split points rather than stored per bucket, so a bucket
/// whose only value sits in a wide empty box spreads its mass over dead
/// space unless a split isolates it. Classic MHIST avoids the problem by
/// storing data-driven bucket boundaries; trimming splits are the
/// equivalent mechanism here. Gap boundaries are scored by the adjacent
/// present frequency (its difference against zero) for MaxDiff, and by
/// that frequency squared (an SSE-scale proxy) for V-Optimal.
#[must_use]
pub fn best_split_bounded(
    values: &[(u32, f64)],
    lo: u32,
    hi: u32,
    criterion: SplitCriterion,
) -> Option<SplitChoice> {
    let mut best = best_split(values, criterion);
    if values.is_empty() {
        return None;
    }
    let gap_score = |f: f64| match criterion {
        SplitCriterion::MaxDiff => f,
        SplitCriterion::VOptimal => f * f,
    };
    let mut candidates: Vec<(u32, f64)> = Vec::new();
    let first = values[0];
    let last = values[values.len() - 1];
    if first.0 > lo {
        candidates.push((first.0, gap_score(first.1)));
    }
    if last.0 < hi {
        candidates.push((last.0 + 1, gap_score(last.1)));
    }
    for w in values.windows(2) {
        if w[1].0 > w[0].0 + 1 {
            candidates.push((w[0].0 + 1, gap_score(w[0].1)));
            candidates.push((w[1].0, gap_score(w[1].1)));
        }
    }
    for (value, score) in candidates {
        if value > lo && value <= hi && best.is_none_or(|b| score > b.score) {
            best = Some(SplitChoice { value, score });
        }
    }
    best
}

/// Sum of squared errors of the frequencies around their mean — the
/// variance-style error measure used when ranking buckets for V-Optimal
/// splits and when reporting histogram approximation error.
#[must_use]
pub fn sse(values: &[(u32, f64)]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let n = values.len() as f64;
    let mean = values.iter().map(|&(_, f)| f).sum::<f64>() / n;
    values.iter().map(|&(_, f)| (f - mean).powi(2)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn too_short_runs() {
        assert_eq!(best_split(&[], SplitCriterion::MaxDiff), None);
        assert_eq!(best_split(&[(3, 5.0)], SplitCriterion::VOptimal), None);
    }

    #[test]
    fn maxdiff_picks_largest_jump() {
        let vals = [(0, 10.0), (1, 11.0), (2, 50.0), (3, 49.0)];
        let s = best_split(&vals, SplitCriterion::MaxDiff).unwrap();
        assert_eq!(s.value, 2);
        assert!((s.score - 39.0).abs() < 1e-12);
    }

    #[test]
    fn maxdiff_handles_drops() {
        let vals = [(0, 90.0), (5, 10.0), (9, 12.0)];
        let s = best_split(&vals, SplitCriterion::MaxDiff).unwrap();
        assert_eq!(s.value, 5);
        assert!((s.score - 80.0).abs() < 1e-12);
    }

    #[test]
    fn voptimal_separates_two_levels() {
        // Two flat plateaus: the optimal split isolates them exactly and
        // achieves zero residual SSE.
        let vals = [(0, 10.0), (1, 10.0), (2, 10.0), (3, 99.0), (4, 99.0)];
        let s = best_split(&vals, SplitCriterion::VOptimal).unwrap();
        assert_eq!(s.value, 3);
        let total = sse(&vals);
        assert!((s.score - total).abs() < 1e-9, "full variance removed");
    }

    #[test]
    fn voptimal_score_is_nonnegative() {
        let vals = [(0, 3.0), (2, 7.0), (5, 1.0), (6, 4.0), (9, 9.0)];
        let s = best_split(&vals, SplitCriterion::VOptimal).unwrap();
        assert!(s.score >= 0.0);
        assert!(vals.iter().any(|&(v, _)| v == s.value));
        assert_ne!(s.value, vals[0].0, "split must be interior");
    }

    #[test]
    fn bounded_trims_leading_and_trailing_gaps() {
        // Single present value in a wide box: the only useful split
        // isolates it from the dead space.
        let vals = [(5, 100.0)];
        let s = best_split_bounded(&vals, 0, 20, SplitCriterion::MaxDiff).unwrap();
        assert!(s.value == 5 || s.value == 6, "got {}", s.value);
        assert_eq!(s.score, 100.0);
        // Tight box: nothing to do.
        assert_eq!(best_split_bounded(&vals, 5, 5, SplitCriterion::MaxDiff), None);
    }

    #[test]
    fn bounded_prefers_big_gap_trim_over_small_diff() {
        // Values 0 (huge) and 50 (small) with a wide interior gap: trimming
        // the gap next to the huge value beats the tiny adjacent diffs.
        let vals = [(0, 5000.0), (50, 10.0), (51, 12.0)];
        let s = best_split_bounded(&vals, 0, 112, SplitCriterion::MaxDiff).unwrap();
        assert_eq!(s.value, 1, "isolate the heavy value at the gap edge");
        assert_eq!(s.score, 5000.0);
    }

    #[test]
    fn bounded_equals_plain_when_dense() {
        // No gaps and a tight box: bounded must agree with the plain split.
        let vals = [(0, 10.0), (1, 11.0), (2, 50.0), (3, 49.0)];
        for criterion in [SplitCriterion::MaxDiff, SplitCriterion::VOptimal] {
            assert_eq!(best_split_bounded(&vals, 0, 3, criterion), best_split(&vals, criterion));
        }
    }

    #[test]
    fn bounded_empty_values() {
        assert_eq!(best_split_bounded(&[], 0, 9, SplitCriterion::MaxDiff), None);
    }

    #[test]
    fn sse_basics() {
        assert_eq!(sse(&[]), 0.0);
        assert_eq!(sse(&[(1, 5.0)]), 0.0);
        assert_eq!(sse(&[(0, 4.0), (1, 4.0)]), 0.0);
        // Values 2 and 6: mean 4, SSE = 4 + 4 = 8.
        assert!((sse(&[(0, 2.0), (1, 6.0)]) - 8.0).abs() < 1e-12);
    }
}
