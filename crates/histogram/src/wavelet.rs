//! Haar wavelet synopses for low-dimensional marginals.
//!
//! The paper's closing argument (§1, §5) is that the DEPENDENCY-BASED
//! methodology is not histogram-specific: *any* data-reduction technique
//! based on data-space partitioning — wavelets are the named example —
//! can be pointed at the low-dimensional marginals a decomposable model
//! identifies, instead of the doomed full-dimensional space. This module
//! provides that alternative clique-synopsis family.
//!
//! A [`HaarSynopsis`] stores the top-`k` coefficients (by absolute
//! normalized magnitude) of the multi-dimensional *standard* Haar
//! decomposition of a dense marginal. Because the normalized Haar basis
//! is orthonormal, the reconstruction SSE equals the sum of squares of
//! the dropped coefficients — so greedy coefficient selection is exactly
//! optimal for the total-variance error measure, and the incremental
//! builder's `peek_gain` is simply the next-largest coefficient squared.
//!
//! Dense transforms are only viable on *small* state spaces — precisely
//! the paper's point: a 113×113 clique marginal is 12.8K cells, while the
//! 6-attribute joint would be 10¹² — and construction enforces a cell cap
//! accordingly.

use dbhist_distribution::{AttrSet, Distribution};

use crate::error::HistogramError;

/// Bytes per stored coefficient: a `u32` linear index + an `f32` value.
pub const WAVELET_BYTES_PER_COEFF: usize = 8;

/// A truncated multi-dimensional Haar decomposition of a marginal.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HaarSynopsis {
    attrs: AttrSet,
    /// True domain sizes, aligned with `attrs`.
    dims: Vec<usize>,
    /// Power-of-two padded sizes, aligned with `attrs`.
    padded: Vec<usize>,
    /// Retained `(flat padded index, normalized coefficient)` pairs.
    coeffs: Vec<(u32, f64)>,
    total: f64,
}

/// Forward 1-D normalized Haar transform in place (length must be a power
/// of two). Uses the orthonormal convention: averages and differences are
/// both scaled by `1/√2`, so the transform preserves the L2 norm.
fn haar_forward(data: &mut [f64]) {
    let n = data.len();
    debug_assert!(n.is_power_of_two());
    let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
    let mut len = n;
    let mut scratch = vec![0.0; n];
    while len > 1 {
        let half = len / 2;
        for i in 0..half {
            scratch[i] = (data[2 * i] + data[2 * i + 1]) * inv_sqrt2;
            scratch[half + i] = (data[2 * i] - data[2 * i + 1]) * inv_sqrt2;
        }
        data[..len].copy_from_slice(&scratch[..len]);
        len = half;
    }
}

/// Inverse of [`haar_forward`].
fn haar_inverse(data: &mut [f64]) {
    let n = data.len();
    debug_assert!(n.is_power_of_two());
    let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
    let mut len = 2;
    let mut scratch = vec![0.0; n];
    while len <= n {
        let half = len / 2;
        for i in 0..half {
            scratch[2 * i] = (data[i] + data[half + i]) * inv_sqrt2;
            scratch[2 * i + 1] = (data[i] - data[half + i]) * inv_sqrt2;
        }
        data[..len].copy_from_slice(&scratch[..len]);
        len *= 2;
    }
}

/// Applies `transform` along every axis of a dense row-major tensor
/// (the *standard* multi-dimensional decomposition).
fn transform_axes(values: &mut [f64], padded: &[usize], transform: fn(&mut [f64])) {
    let total: usize = padded.iter().product();
    for (axis, &len) in padded.iter().enumerate() {
        // Stride of this axis in the row-major layout.
        let stride: usize = padded[axis + 1..].iter().product();
        let mut lane = vec![0.0; len];
        // Iterate over all lines along `axis`.
        let outer = total / (len * stride);
        for o in 0..outer {
            for s in 0..stride {
                let base = o * len * stride + s;
                for (i, l) in lane.iter_mut().enumerate() {
                    *l = values[base + i * stride];
                }
                transform(&mut lane);
                for (i, &l) in lane.iter().enumerate() {
                    values[base + i * stride] = l;
                }
            }
        }
    }
}

impl HaarSynopsis {
    /// Builds a synopsis retaining the `coefficients` largest-magnitude
    /// Haar coefficients of `dist`'s dense tensor.
    ///
    /// # Errors
    ///
    /// Returns [`HistogramError::InvalidRequest`] for an empty
    /// distribution, a zero coefficient budget, or a (padded) state space
    /// exceeding `max_cells`.
    pub fn build(
        dist: &Distribution,
        coefficients: usize,
        max_cells: usize,
    ) -> Result<Self, HistogramError> {
        let mut builder = HaarBuilder::new(dist, max_cells)?;
        if coefficients == 0 {
            return Err(HistogramError::InvalidRequest {
                reason: "coefficient budget must be positive".into(),
            });
        }
        while builder.retained() < coefficients && builder.add_next() {}
        Ok(builder.finish())
    }

    /// The attributes the synopsis covers.
    #[must_use]
    pub fn attrs(&self) -> &AttrSet {
        &self.attrs
    }

    /// True per-attribute domain sizes, aligned with `attrs`.
    #[must_use]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Power-of-two padded sizes, aligned with `attrs`.
    #[must_use]
    pub fn padded(&self) -> &[usize] {
        &self.padded
    }

    /// The retained `(flat padded index, coefficient)` pairs.
    #[must_use]
    pub fn coefficients(&self) -> &[(u32, f64)] {
        &self.coeffs
    }

    /// Reassembles a synopsis from snapshot parts of unknown provenance,
    /// validating every invariant the builder establishes by
    /// construction. `max_cells` bounds the padded state space so hostile
    /// bytes cannot drive a huge allocation at reconstruction time.
    ///
    /// # Errors
    ///
    /// Returns [`HistogramError::Codec`] if the parts violate any
    /// invariant.
    pub(crate) fn from_parts_checked(
        attrs: AttrSet,
        dims: Vec<usize>,
        coeffs: Vec<(u32, f64)>,
        total: f64,
        max_cells: usize,
    ) -> Result<Self, HistogramError> {
        let codec = |reason: String| HistogramError::Codec { reason };
        if attrs.is_empty() || dims.len() != attrs.len() {
            return Err(codec("wavelet dims are not aligned with the attribute set".into()));
        }
        if dims.contains(&0) {
            return Err(codec("wavelet dimension with an empty domain".into()));
        }
        // `padded` is derived data — always the next power of two.
        let padded: Vec<usize> = dims.iter().map(|&d| d.next_power_of_two()).collect();
        let cells = padded.iter().try_fold(1usize, |acc, &p| acc.checked_mul(p));
        let cells = match cells {
            Some(c) if c <= max_cells => c,
            _ => return Err(codec(format!("padded state space exceeds the {max_cells}-cell cap"))),
        };
        if coeffs.len() > cells {
            return Err(codec(format!("{} coefficients for {cells} cells", coeffs.len())));
        }
        if coeffs.iter().any(|&(i, c)| i as usize >= cells || !c.is_finite()) {
            return Err(codec("wavelet coefficient index or value out of range".into()));
        }
        if !total.is_finite() || total < 0.0 {
            return Err(codec("wavelet total must be finite and non-negative".into()));
        }
        Ok(Self { attrs, dims, padded, coeffs, total })
    }

    /// Number of retained coefficients.
    #[must_use]
    pub fn coefficient_count(&self) -> usize {
        self.coeffs.len()
    }

    /// Storage footprint in bytes (8 bytes per retained coefficient).
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        WAVELET_BYTES_PER_COEFF * self.coeffs.len()
    }

    /// Total mass of the underlying marginal.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Reconstructs the dense tensor implied by the retained coefficients
    /// (clamping small negative reconstruction artifacts to zero).
    #[must_use]
    pub fn reconstruct_dense(&self) -> Vec<f64> {
        let cells: usize = self.padded.iter().product();
        let mut values = vec![0.0; cells];
        for &(idx, c) in &self.coeffs {
            values[idx as usize] = c;
        }
        transform_axes(&mut values, &self.padded, haar_inverse);
        for v in &mut values {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        values
    }

    /// Reconstructs the synopsis as a sparse [`Distribution`] over the
    /// original (unpadded) domain, suitable for use as an exact-style
    /// factor in `ComputeMarginal`.
    ///
    /// # Errors
    ///
    /// Propagates distribution-construction failures.
    pub fn reconstruct(
        &self,
        schema: &dbhist_distribution::Schema,
    ) -> Result<Distribution, dbhist_distribution::DistributionError> {
        let dense = self.reconstruct_dense();
        let mut out = Distribution::empty(schema.clone(), self.attrs.clone())?;
        let mut key = vec![0u32; self.dims.len()];
        for (flat, &v) in dense.iter().enumerate() {
            if v <= 0.0 {
                continue;
            }
            // Decode against padded dims; skip padding cells.
            let mut rem = flat;
            let mut in_domain = true;
            for p in (0..self.padded.len()).rev() {
                let coord = rem % self.padded[p];
                rem /= self.padded[p];
                if coord >= self.dims[p] {
                    in_domain = false;
                    break;
                }
                key[p] = coord as u32;
            }
            if in_domain {
                out.add(&key, v);
            }
        }
        Ok(out)
    }
}

/// Incremental Haar builder: computes the full decomposition once, then
/// hands out coefficients largest-magnitude first. Orthonormality makes
/// the greedy sequence exactly optimal for SSE.
#[derive(Debug, Clone)]
pub struct HaarBuilder {
    attrs: AttrSet,
    dims: Vec<usize>,
    padded: Vec<usize>,
    /// All coefficients sorted by descending |value|.
    ranked: Vec<(u32, f64)>,
    /// How many of `ranked` are currently retained.
    kept: usize,
    /// Σ of squared dropped coefficients = current reconstruction SSE.
    residual_sse: f64,
    total: f64,
}

impl HaarBuilder {
    /// Decomposes `dist` into a ranked coefficient list.
    ///
    /// # Errors
    ///
    /// Returns [`HistogramError::InvalidRequest`] for empty input or a
    /// padded state space exceeding `max_cells`.
    pub fn new(dist: &Distribution, max_cells: usize) -> Result<Self, HistogramError> {
        let attrs = dist.attrs().clone();
        if attrs.is_empty() || dist.total() <= 0.0 {
            return Err(HistogramError::InvalidRequest {
                reason: "wavelet synopses need a non-empty distribution".into(),
            });
        }
        let dims: Vec<usize> =
            attrs.iter().map(|a| dist.schema().domain_size(a) as usize).collect();
        let padded: Vec<usize> = dims.iter().map(|&d| d.next_power_of_two()).collect();
        let cells: usize = padded.iter().product();
        if cells > max_cells {
            return Err(HistogramError::InvalidRequest {
                reason: format!(
                    "padded state space of {cells} cells exceeds the {max_cells}-cell cap \
                     (wavelets, like histograms, need the low-dimensional marginals a \
                     dependency model provides)"
                ),
            });
        }
        let mut values = vec![0.0; cells];
        for (key, f) in dist.iter() {
            let mut flat = 0usize;
            for (p, &v) in key.iter().enumerate() {
                flat = flat * padded[p] + v as usize;
            }
            values[flat] = f;
        }
        transform_axes(&mut values, &padded, haar_forward);
        let mut ranked: Vec<(u32, f64)> = values
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != 0.0) // lint:allow(float-cmp): drop exactly-zero coefficients, not a tolerance test
            .map(|(i, &c)| (i as u32, c))
            .collect();
        ranked.sort_by(|a, b| {
            b.1.abs()
                .partial_cmp(&a.1.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let residual_sse = ranked.iter().map(|&(_, c)| c * c).sum();
        Ok(Self { attrs, dims, padded, ranked, kept: 0, residual_sse, total: dist.total() })
    }

    /// Number of coefficients currently retained.
    #[must_use]
    pub fn retained(&self) -> usize {
        self.kept
    }

    /// Current reconstruction SSE (Σ of squared dropped coefficients).
    #[must_use]
    pub fn error(&self) -> f64 {
        self.residual_sse
    }

    /// The SSE decrease the next coefficient would bring.
    #[must_use]
    pub fn peek_gain(&self) -> Option<f64> {
        self.ranked.get(self.kept).map(|&(_, c)| c * c)
    }

    /// Retains the next-ranked coefficient. Returns `false` if exhausted.
    pub fn add_next(&mut self) -> bool {
        match self.ranked.get(self.kept) {
            Some(&(_, c)) => {
                self.kept += 1;
                self.residual_sse = (self.residual_sse - c * c).max(0.0);
                true
            }
            None => false,
        }
    }

    /// Materializes the truncated synopsis.
    #[must_use]
    pub fn finish(&self) -> HaarSynopsis {
        HaarSynopsis {
            attrs: self.attrs.clone(),
            dims: self.dims.clone(),
            padded: self.padded.clone(),
            coeffs: self.ranked[..self.kept].to_vec(),
            total: self.total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbhist_distribution::{Relation, Schema};

    fn skewed_2d() -> Distribution {
        let schema = Schema::new(vec![("x", 6), ("y", 10)]).unwrap();
        let mut rows = Vec::new();
        for x in 0..6u32 {
            for y in 0..10u32 {
                for _ in 0..(x * x + y + 1) {
                    rows.push(vec![x, y]);
                }
            }
        }
        Relation::from_rows(schema, rows).unwrap().distribution()
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let mut data = vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let original = data.clone();
        haar_forward(&mut data);
        haar_inverse(&mut data);
        for (a, b) in data.iter().zip(&original) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn transform_preserves_l2_norm() {
        let mut data = vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let norm: f64 = data.iter().map(|v| v * v).sum();
        haar_forward(&mut data);
        let tnorm: f64 = data.iter().map(|v| v * v).sum();
        assert!((norm - tnorm).abs() < 1e-9, "orthonormal transform");
    }

    #[test]
    fn full_retention_is_exact() {
        let dist = skewed_2d();
        let syn = HaarSynopsis::build(&dist, usize::MAX >> 1, 1 << 20).unwrap();
        let rec = syn.reconstruct(dist.schema()).unwrap();
        for (k, f) in dist.iter() {
            assert!((rec.frequency(k) - f).abs() < 1e-6, "cell {k:?}: {} vs {f}", rec.frequency(k));
        }
        assert!((rec.total() - dist.total()).abs() < 1e-6);
    }

    #[test]
    fn truncation_error_equals_dropped_energy() {
        // Orthonormality: reconstruction SSE == Σ dropped coefficients².
        let dist = skewed_2d();
        let mut builder = HaarBuilder::new(&dist, 1 << 20).unwrap();
        for _ in 0..10 {
            builder.add_next();
        }
        let predicted = builder.error();
        let syn = builder.finish();
        let dense = {
            // Reconstruct WITHOUT clamping to measure the pure L2 error.
            let cells: usize = syn.padded.iter().product();
            let mut values = vec![0.0; cells];
            for &(idx, c) in &syn.coeffs {
                values[idx as usize] = c;
            }
            transform_axes(&mut values, &syn.padded, haar_inverse);
            values
        };
        // Dense original.
        let mut original = vec![0.0; dense.len()];
        for (key, f) in dist.iter() {
            let mut flat = 0usize;
            for (p, &v) in key.iter().enumerate() {
                flat = flat * syn.padded[p] + v as usize;
            }
            original[flat] = f;
        }
        let actual: f64 = dense.iter().zip(&original).map(|(a, b)| (a - b) * (a - b)).sum();
        assert!((actual - predicted).abs() < 1e-6 * (1.0 + predicted), "{actual} vs {predicted}");
    }

    #[test]
    fn greedy_gain_matches_error_drop() {
        let dist = skewed_2d();
        let mut b = HaarBuilder::new(&dist, 1 << 20).unwrap();
        while let Some(gain) = b.peek_gain() {
            let before = b.error();
            assert!(b.add_next());
            assert!((gain - (before - b.error())).abs() < 1e-6 * (1.0 + gain));
        }
        assert!(b.error() < 1e-6);
        assert!(!b.add_next());
    }

    #[test]
    fn coefficients_ranked_descending() {
        let dist = skewed_2d();
        let b = HaarBuilder::new(&dist, 1 << 20).unwrap();
        assert!(b.ranked.windows(2).all(|w| w[0].1.abs() >= w[1].1.abs() - 1e-12));
    }

    #[test]
    fn cell_cap_and_bad_input() {
        let schema = Schema::new(vec![("a", 100), ("b", 100), ("c", 100)]).unwrap();
        let rel = Relation::from_rows(schema, vec![vec![0, 0, 0]]).unwrap();
        assert!(HaarBuilder::new(&rel.distribution(), 1 << 16).is_err());
        let dist = skewed_2d();
        assert!(HaarSynopsis::build(&dist, 0, 1 << 20).is_err());
    }

    #[test]
    fn storage_accounting() {
        let dist = skewed_2d();
        let syn = HaarSynopsis::build(&dist, 12, 1 << 20).unwrap();
        assert_eq!(syn.coefficient_count(), 12);
        assert_eq!(syn.storage_bytes(), 96);
        assert_eq!(syn.attrs().len(), 2);
    }

    #[test]
    fn non_power_of_two_domains_padded() {
        // 6 and 10 pad to 8 and 16; reconstruction must not leak mass into
        // padding cells when fully retained.
        let dist = skewed_2d();
        let syn = HaarSynopsis::build(&dist, usize::MAX >> 1, 1 << 20).unwrap();
        let rec = syn.reconstruct(dist.schema()).unwrap();
        assert!((rec.total() - dist.total()).abs() < 1e-6);
        assert_eq!(syn.padded, vec![8, 16]);
    }
}
