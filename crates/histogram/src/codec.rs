//! Storage accounting and a binary wire format for histograms.
//!
//! The paper's evaluation (§4.1) charges synopses by the byte:
//!
//! * MHIST split tree — `4b` bytes of leaf counts, `b − 1` bytes of split
//!   dimensions, `4(b − 1)` bytes of split values ≈ **`9b` bytes** for `b`
//!   buckets (the paper's approximation, used by every experiment here);
//! * naive MHIST — `b(2n + 1)` stored numbers = `4b(2n + 1)` bytes (the
//!   representation of the original MHIST paper \[18\], reproduced for the
//!   split-tree ablation);
//! * one-dimensional histograms — 4 bytes per separator + 4 bytes per
//!   frequency = **`8b` bytes**.
//!
//! [`encode_split_tree`] / [`decode_split_tree`] realize the split-tree
//! layout as an actual serialization (pre-order, `f32` frequencies, `u8`
//! dimension tags), so the byte model is demonstrably achievable, and the
//! round-trip is tested to preserve estimates up to `f32` precision.

use dbhist_distribution::{AttrId, AttrSet};

use crate::bbox::BoundingBox;
use crate::error::HistogramError;
use crate::mhist::{Node, NodeId, SplitTree};

/// Paper-model size of a `b`-bucket MHIST split tree: `9b` bytes.
#[must_use]
pub fn split_tree_bytes(buckets: usize) -> usize {
    9 * buckets
}

/// Exact size of the split-tree payload (excluding the header): `4b`
/// leaf frequencies + `5(b − 1)` internal-node entries = `9b − 5` bytes.
#[must_use]
pub fn split_tree_bytes_exact(buckets: usize) -> usize {
    if buckets == 0 {
        0
    } else {
        9 * buckets - 5
    }
}

/// Size of a `b`-bucket, `n`-dimensional MHIST under the *naive* explicit
/// bucket representation of Poosala & Ioannidis: `2n + 1` numbers — the
/// low/high boundary per dimension plus a frequency — at 4 bytes each.
#[must_use]
pub fn naive_mhist_bytes(buckets: usize, dims: usize) -> usize {
    4 * buckets * (2 * dims + 1)
}

/// Paper-model size of a `b`-bucket one-dimensional histogram: `8b` bytes.
#[must_use]
pub fn one_dim_bytes(buckets: usize) -> usize {
    8 * buckets
}

/// Serializes a split tree: a small header (attribute ids and domain
/// ranges) followed by the pre-order node stream (`0` tag + `f32` for
/// leaves; `1` tag + `u8` dimension index + `u32` split value for internal
/// nodes). The node stream is exactly the `9b − 5` bytes of the paper's
/// accounting (plus one tag byte per node for self-description).
///
/// # Errors
///
/// Returns [`HistogramError::Codec`] if the tree does not fit the wire
/// format (arity beyond `u16`, more than 256 split dimensions, or a
/// malformed arena).
pub fn encode_split_tree(tree: &SplitTree) -> Result<Vec<u8>, HistogramError> {
    let mut out = Vec::new();
    let attrs: Vec<AttrId> = tree.attrs().iter().collect();
    let arity = u16::try_from(attrs.len()).map_err(|_| HistogramError::Codec {
        reason: "attribute count exceeds the u16 wire header".into(),
    })?;
    out.extend_from_slice(&arity.to_le_bytes());
    for (a, &(lo, hi)) in attrs.iter().zip(tree.domain().ranges()) {
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&lo.to_le_bytes());
        out.extend_from_slice(&hi.to_le_bytes());
    }
    encode_nodes(tree, &attrs, &mut out)?;
    Ok(out)
}

/// Emits the pre-order node stream with an explicit worklist — like the
/// decoder, the encoder must not recurse over arbitrarily deep trees.
fn encode_nodes(
    tree: &SplitTree,
    attrs: &[AttrId],
    out: &mut Vec<u8>,
) -> Result<(), HistogramError> {
    let mut stack: Vec<NodeId> = vec![0];
    while let Some(id) = stack.pop() {
        match tree.nodes().get(id as usize) {
            Some(Node::Leaf { freq }) => {
                out.push(0);
                out.extend_from_slice(&(*freq as f32).to_le_bytes());
            }
            Some(Node::Internal { attr, split, left, right }) => {
                out.push(1);
                let pos =
                    attrs.iter().position(|a| a == attr).ok_or_else(|| HistogramError::Codec {
                        reason: "split attribute missing from the header".into(),
                    })?;
                let dim = u8::try_from(pos).map_err(|_| HistogramError::Codec {
                    reason: "dimension index exceeds the u8 wire tag".into(),
                })?;
                out.push(dim);
                out.extend_from_slice(&split.to_le_bytes());
                stack.push(*right);
                stack.push(*left);
            }
            None => {
                return Err(HistogramError::Codec {
                    reason: "node id out of range in the arena".into(),
                });
            }
        }
    }
    Ok(())
}

/// Deserializes a split tree produced by [`encode_split_tree`].
///
/// # Errors
///
/// Returns [`HistogramError::Codec`] for truncated or malformed input.
pub fn decode_split_tree(bytes: &[u8]) -> Result<SplitTree, HistogramError> {
    let mut cursor = Cursor { bytes, pos: 0 };
    let n = usize::from(cursor.u16()?);
    if n == 0 {
        return Err(HistogramError::Codec { reason: "zero-attribute header".into() });
    }
    // Each header entry costs 10 bytes; an oversized count cannot be valid
    // and must not drive a large allocation.
    if bytes.len().saturating_sub(cursor.pos) / 10 < n {
        return Err(HistogramError::Codec { reason: "attribute count exceeds buffer".into() });
    }
    let mut attrs = Vec::with_capacity(n);
    let mut ranges = Vec::with_capacity(n);
    for _ in 0..n {
        attrs.push(cursor.u16()?);
        let lo = cursor.u32()?;
        let hi = cursor.u32()?;
        if lo > hi {
            return Err(HistogramError::Codec { reason: "inverted domain range".into() });
        }
        ranges.push((lo, hi));
    }
    let attr_set = AttrSet::from_ids(attrs.iter().copied());
    if attr_set.len() != n {
        return Err(HistogramError::Codec { reason: "duplicate attributes in header".into() });
    }
    // Ranges must be re-ordered to the canonical ascending attr order.
    let mut ordered: Vec<(AttrId, (u32, u32))> = attrs.iter().copied().zip(ranges).collect();
    ordered.sort_unstable_by_key(|&(a, _)| a);
    let domain = BoundingBox::new(attr_set.clone(), ordered.iter().map(|&(_, r)| r).collect());
    let nodes = decode_nodes(&mut cursor, &attrs)?;
    if cursor.pos != bytes.len() {
        return Err(HistogramError::Codec { reason: "trailing bytes".into() });
    }
    let tree = SplitTree::from_parts_unvalidated(attr_set, domain, nodes);
    tree.validate().map_err(|reason| HistogramError::Codec { reason })?;
    Ok(tree)
}

// ---------------------------------------------------------------------
// Exact (bit-preserving) codecs for snapshot persistence.
//
// The wire format above realizes the *paper's byte accounting* — f32
// frequencies, pre-order layout — and is kept as the storage-cost model.
// Snapshots have a different contract: a loaded synopsis must answer
// queries bit-identically to the saved one, so these codecs serialize
// every f64 by bit pattern and the split-tree arena verbatim (explicit
// child ids, arena order), with no quantization and no re-layout.
// ---------------------------------------------------------------------

fn encode_attr_header(
    attrs: &AttrSet,
    ranges: &[(u32, u32)],
    out: &mut Vec<u8>,
) -> Result<(), HistogramError> {
    let n = u16::try_from(attrs.len())
        .map_err(|_| HistogramError::Codec { reason: "attribute count exceeds u16".into() })?;
    out.extend_from_slice(&n.to_le_bytes());
    for (a, &(lo, hi)) in attrs.iter().zip(ranges) {
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&lo.to_le_bytes());
        out.extend_from_slice(&hi.to_le_bytes());
    }
    Ok(())
}

/// Decodes the shared attribute header: ids must be strictly ascending
/// (the encoder writes canonical [`AttrSet`] order) and ranges upright.
fn decode_attr_header(cursor: &mut Cursor<'_>) -> Result<(AttrSet, BoundingBox), HistogramError> {
    let n = usize::from(cursor.u16()?);
    if n == 0 {
        return Err(HistogramError::Codec { reason: "zero-attribute header".into() });
    }
    if cursor.bytes.len().saturating_sub(cursor.pos) / 10 < n {
        return Err(HistogramError::Codec { reason: "attribute count exceeds buffer".into() });
    }
    let mut ids = Vec::with_capacity(n);
    let mut ranges = Vec::with_capacity(n);
    for _ in 0..n {
        let id = cursor.u16()?;
        if ids.last().is_some_and(|&prev| prev >= id) {
            return Err(HistogramError::Codec {
                reason: "attribute ids not strictly ascending".into(),
            });
        }
        ids.push(id);
        let lo = cursor.u32()?;
        let hi = cursor.u32()?;
        if lo > hi {
            return Err(HistogramError::Codec { reason: "inverted domain range".into() });
        }
        ranges.push((lo, hi));
    }
    let attrs = AttrSet::from_ids(ids);
    let domain = BoundingBox::new(attrs.clone(), ranges);
    Ok((attrs, domain))
}

/// Serializes a split tree exactly: attribute header, the cached total
/// (by bit pattern), then the node arena verbatim — `0` tag + `f64`
/// frequency for leaves, `1` tag + `u16` attribute id + `u32` split +
/// explicit `u32` child ids for internal nodes.
///
/// # Errors
///
/// Returns [`HistogramError::Codec`] if the arena exceeds the `u32` node
/// count (impossible for trees this workspace builds).
pub fn encode_split_tree_exact(tree: &SplitTree) -> Result<Vec<u8>, HistogramError> {
    let mut out = Vec::new();
    encode_attr_header(tree.attrs(), tree.domain().ranges(), &mut out)?;
    out.extend_from_slice(&tree.total().to_bits().to_le_bytes());
    let count = u32::try_from(tree.nodes().len())
        .map_err(|_| HistogramError::Codec { reason: "node arena exceeds u32".into() })?;
    out.extend_from_slice(&count.to_le_bytes());
    for node in tree.nodes() {
        match node {
            Node::Leaf { freq } => {
                out.push(0);
                out.extend_from_slice(&freq.to_bits().to_le_bytes());
            }
            Node::Internal { attr, split, left, right } => {
                out.push(1);
                out.extend_from_slice(&attr.to_le_bytes());
                out.extend_from_slice(&split.to_le_bytes());
                out.extend_from_slice(&left.to_le_bytes());
                out.extend_from_slice(&right.to_le_bytes());
            }
        }
    }
    Ok(out)
}

/// Deserializes [`encode_split_tree_exact`] output. The arena is rebuilt
/// verbatim (preserving node order and the cached total bit-for-bit) and
/// then gated through [`SplitTree::validate`], so malformed input —
/// cycles, orphans, out-of-range children, bad splits — is rejected with
/// an error, never trusted.
///
/// # Errors
///
/// Returns [`HistogramError::Codec`] for truncated or malformed input.
pub fn decode_split_tree_exact(bytes: &[u8]) -> Result<SplitTree, HistogramError> {
    let mut cursor = Cursor { bytes, pos: 0 };
    let (attrs, domain) = decode_attr_header(&mut cursor)?;
    let total = f64::from_bits(cursor.u64()?);
    let count = cursor.u32()? as usize;
    // Every node costs ≥ 9 bytes; reject counts the buffer cannot hold.
    if bytes.len().saturating_sub(cursor.pos) / 9 < count {
        return Err(HistogramError::Codec { reason: "node count exceeds buffer".into() });
    }
    let mut nodes = Vec::with_capacity(count);
    for _ in 0..count {
        match cursor.u8()? {
            0 => nodes.push(Node::Leaf { freq: f64::from_bits(cursor.u64()?) }),
            1 => {
                let attr = cursor.u16()?;
                let split = cursor.u32()?;
                let left = cursor.u32()?;
                let right = cursor.u32()?;
                nodes.push(Node::Internal { attr, split, left, right });
            }
            tag => return Err(HistogramError::Codec { reason: format!("unknown node tag {tag}") }),
        }
    }
    if cursor.pos != bytes.len() {
        return Err(HistogramError::Codec { reason: "trailing bytes".into() });
    }
    let tree = SplitTree::from_parts_with_total(attrs, domain, nodes, total);
    tree.validate().map_err(|reason| HistogramError::Codec { reason })?;
    Ok(tree)
}

/// Serializes a grid histogram exactly: attribute header, cached total
/// (by bit pattern), per-dimension boundary lists, then the row-major
/// `f64` frequency array verbatim.
///
/// # Errors
///
/// Returns [`HistogramError::Codec`] if a count exceeds its `u32` prefix.
pub fn encode_grid_exact(grid: &crate::grid::GridHistogram) -> Result<Vec<u8>, HistogramError> {
    let mut out = Vec::new();
    encode_attr_header(grid.attrs(), grid.domain().ranges(), &mut out)?;
    out.extend_from_slice(&grid.total().to_bits().to_le_bytes());
    for bs in grid.boundaries() {
        let count = u32::try_from(bs.len())
            .map_err(|_| HistogramError::Codec { reason: "boundary count exceeds u32".into() })?;
        out.extend_from_slice(&count.to_le_bytes());
        for &b in bs {
            out.extend_from_slice(&b.to_le_bytes());
        }
    }
    let count = u32::try_from(grid.freqs().len())
        .map_err(|_| HistogramError::Codec { reason: "frequency count exceeds u32".into() })?;
    out.extend_from_slice(&count.to_le_bytes());
    for &f in grid.freqs() {
        out.extend_from_slice(&f.to_bits().to_le_bytes());
    }
    Ok(out)
}

/// Deserializes [`encode_grid_exact`] output through the validating grid
/// constructor.
///
/// # Errors
///
/// Returns [`HistogramError::Codec`] for truncated or malformed input.
pub fn decode_grid_exact(bytes: &[u8]) -> Result<crate::grid::GridHistogram, HistogramError> {
    let mut cursor = Cursor { bytes, pos: 0 };
    let (attrs, domain) = decode_attr_header(&mut cursor)?;
    let total = f64::from_bits(cursor.u64()?);
    let mut boundaries = Vec::with_capacity(attrs.len());
    for _ in 0..attrs.len() {
        let count = cursor.u32()? as usize;
        if bytes.len().saturating_sub(cursor.pos) / 4 < count {
            return Err(HistogramError::Codec { reason: "boundary count exceeds buffer".into() });
        }
        let mut bs = Vec::with_capacity(count);
        for _ in 0..count {
            bs.push(cursor.u32()?);
        }
        boundaries.push(bs);
    }
    let count = cursor.u32()? as usize;
    if bytes.len().saturating_sub(cursor.pos) / 8 < count {
        return Err(HistogramError::Codec { reason: "frequency count exceeds buffer".into() });
    }
    let mut freqs = Vec::with_capacity(count);
    for _ in 0..count {
        freqs.push(f64::from_bits(cursor.u64()?));
    }
    if cursor.pos != bytes.len() {
        return Err(HistogramError::Codec { reason: "trailing bytes".into() });
    }
    crate::grid::GridHistogram::from_parts_with_total(attrs, domain, boundaries, freqs, total)
}

/// Serializes a Haar synopsis exactly: attribute header (domain sizes as
/// ranges `0..dim-1`), cached total (by bit pattern), then the retained
/// `(flat index, f64 coefficient)` pairs verbatim. Padded sizes are not
/// stored — they are always the next power of two of the true sizes.
///
/// # Errors
///
/// Returns [`HistogramError::Codec`] if a count exceeds its `u32` prefix.
pub fn encode_haar_exact(syn: &crate::wavelet::HaarSynopsis) -> Result<Vec<u8>, HistogramError> {
    let mut out = Vec::new();
    let ranges: Vec<(u32, u32)> = syn
        .dims()
        .iter()
        .map(|&d| {
            u32::try_from(d)
                .ok()
                .and_then(|d| d.checked_sub(1))
                .map(|hi| (0, hi))
                .ok_or_else(|| HistogramError::Codec { reason: "invalid wavelet dim".into() })
        })
        .collect::<Result<_, _>>()?;
    encode_attr_header(syn.attrs(), &ranges, &mut out)?;
    out.extend_from_slice(&syn.total().to_bits().to_le_bytes());
    let count = u32::try_from(syn.coefficients().len())
        .map_err(|_| HistogramError::Codec { reason: "coefficient count exceeds u32".into() })?;
    out.extend_from_slice(&count.to_le_bytes());
    for &(i, c) in syn.coefficients() {
        out.extend_from_slice(&i.to_le_bytes());
        out.extend_from_slice(&c.to_bits().to_le_bytes());
    }
    Ok(out)
}

/// Deserializes [`encode_haar_exact`] output through the validating
/// constructor; `max_cells` caps the padded state space so hostile bytes
/// cannot force a huge reconstruction tensor.
///
/// # Errors
///
/// Returns [`HistogramError::Codec`] for truncated or malformed input.
pub fn decode_haar_exact(
    bytes: &[u8],
    max_cells: usize,
) -> Result<crate::wavelet::HaarSynopsis, HistogramError> {
    let mut cursor = Cursor { bytes, pos: 0 };
    let (attrs, domain) = decode_attr_header(&mut cursor)?;
    if domain.ranges().iter().any(|&(lo, _)| lo != 0) {
        return Err(HistogramError::Codec { reason: "wavelet ranges must start at 0".into() });
    }
    let dims: Vec<usize> = domain.ranges().iter().map(|&(_, hi)| hi as usize + 1).collect();
    let total = f64::from_bits(cursor.u64()?);
    let count = cursor.u32()? as usize;
    if bytes.len().saturating_sub(cursor.pos) / 12 < count {
        return Err(HistogramError::Codec { reason: "coefficient count exceeds buffer".into() });
    }
    let mut coeffs = Vec::with_capacity(count);
    for _ in 0..count {
        let i = cursor.u32()?;
        let c = f64::from_bits(cursor.u64()?);
        coeffs.push((i, c));
    }
    if cursor.pos != bytes.len() {
        return Err(HistogramError::Codec { reason: "trailing bytes".into() });
    }
    crate::wavelet::HaarSynopsis::from_parts_checked(attrs, dims, coeffs, total, max_cells)
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], HistogramError> {
        let s = self
            .pos
            .checked_add(n)
            .and_then(|end| self.bytes.get(self.pos..end))
            .ok_or_else(|| HistogramError::Codec { reason: "truncated input".into() })?;
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, HistogramError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, HistogramError> {
        let raw: [u8; 2] = self
            .take(2)?
            .try_into()
            .map_err(|_| HistogramError::Codec { reason: "truncated input".into() })?;
        Ok(u16::from_le_bytes(raw))
    }

    fn u32(&mut self) -> Result<u32, HistogramError> {
        let raw: [u8; 4] = self
            .take(4)?
            .try_into()
            .map_err(|_| HistogramError::Codec { reason: "truncated input".into() })?;
        Ok(u32::from_le_bytes(raw))
    }

    fn u64(&mut self) -> Result<u64, HistogramError> {
        let raw: [u8; 8] = self
            .take(8)?
            .try_into()
            .map_err(|_| HistogramError::Codec { reason: "truncated input".into() })?;
        Ok(u64::from_le_bytes(raw))
    }

    fn f32(&mut self) -> Result<f32, HistogramError> {
        let raw: [u8; 4] = self
            .take(4)?
            .try_into()
            .map_err(|_| HistogramError::Codec { reason: "truncated input".into() })?;
        Ok(f32::from_le_bytes(raw))
    }
}

/// Which child slot of which arena index a decoded node must be patched
/// into.
enum Slot {
    Root,
    Left(usize),
    Right(usize),
}

/// Decodes the pre-order node stream with an explicit worklist.
///
/// The walk is deliberately non-recursive: the wire format is
/// attacker-controlled, and a recursive descent bounded only by a depth
/// constant either rejects legitimately deep trees or risks exhausting the
/// stack (the depth that fits depends on build profile and thread stack
/// size). With an explicit stack, depth is bounded by
/// [`crate::mhist::MAX_TREE_DEPTH`] as a *format* limit enforced by
/// [`SplitTree::validate`] after decoding, and decoding itself is safe at
/// any nesting. Node count needs no separate cap: every node consumes at
/// least 5 input bytes, so the arena is bounded by the buffer length.
fn decode_nodes(cursor: &mut Cursor<'_>, attrs: &[AttrId]) -> Result<Vec<Node>, HistogramError> {
    let mut nodes: Vec<Node> = Vec::new();
    let mut pending: Vec<Slot> = vec![Slot::Root];
    while let Some(slot) = pending.pop() {
        let idx = nodes.len();
        let id = NodeId::try_from(idx)
            .map_err(|_| HistogramError::Codec { reason: "node arena overflow".into() })?;
        match cursor.u8()? {
            0 => {
                let freq = f64::from(cursor.f32()?);
                nodes.push(Node::Leaf { freq });
            }
            1 => {
                let dim = usize::from(cursor.u8()?);
                let attr = *attrs
                    .get(dim)
                    .ok_or_else(|| HistogramError::Codec { reason: "bad dimension tag".into() })?;
                let split = cursor.u32()?;
                // Children are patched in as they stream past: the left
                // subtree comes first in pre-order, so its slot is pushed
                // last.
                nodes.push(Node::Internal { attr, split, left: 0, right: 0 });
                pending.push(Slot::Right(idx));
                pending.push(Slot::Left(idx));
            }
            tag => return Err(HistogramError::Codec { reason: format!("unknown node tag {tag}") }),
        }
        match slot {
            Slot::Root => {}
            Slot::Left(parent) => {
                if let Some(Node::Internal { left, .. }) = nodes.get_mut(parent) {
                    *left = id;
                }
            }
            Slot::Right(parent) => {
                if let Some(Node::Internal { right, .. }) = nodes.get_mut(parent) {
                    *right = id;
                }
            }
        }
    }
    Ok(nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::criterion::SplitCriterion;
    use crate::mhist::MhistBuilder;
    use dbhist_distribution::{Relation, Schema};

    fn sample_tree(buckets: usize) -> SplitTree {
        let schema = Schema::new(vec![("x", 16), ("y", 8)]).unwrap();
        let rows: Vec<Vec<u32>> = (0..512u32).map(|i| vec![(i * 7) % 16, (i * i) % 8]).collect();
        let dist = Relation::from_rows(schema, rows).unwrap().distribution();
        MhistBuilder::build(&dist, buckets, SplitCriterion::MaxDiff).unwrap()
    }

    #[test]
    fn byte_model_constants() {
        assert_eq!(split_tree_bytes(100), 900);
        assert_eq!(split_tree_bytes_exact(100), 895);
        assert_eq!(split_tree_bytes_exact(0), 0);
        // The split tree beats the naive representation for every n ≥ 1,
        // by a factor growing with dimensionality.
        assert_eq!(naive_mhist_bytes(100, 2), 2000);
        assert_eq!(naive_mhist_bytes(100, 12), 10000);
        assert_eq!(one_dim_bytes(50), 400);
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let tree = sample_tree(20);
        let bytes = encode_split_tree(&tree).unwrap();
        let back = decode_split_tree(&bytes).unwrap();
        assert_eq!(back.attrs(), tree.attrs());
        assert_eq!(back.domain(), tree.domain());
        assert_eq!(back.bucket_count(), tree.bucket_count());
        // Estimates agree to f32 precision.
        for lo in [0u32, 3, 8] {
            for hi in [8u32, 12, 15] {
                let a = tree.mass_in_box(&[(0, lo, hi)]);
                let b = back.mass_in_box(&[(0, lo, hi)]);
                assert!((a - b).abs() < 1e-2 * (1.0 + a.abs()));
            }
        }
    }

    #[test]
    fn encoded_size_matches_paper_model() {
        for buckets in [1usize, 5, 20, 50] {
            let tree = sample_tree(buckets);
            let b = tree.bucket_count();
            let bytes = encode_split_tree(&tree).unwrap();
            let header = 2 + 10 * tree.attrs().len();
            let tags = 2 * b - 1; // one self-description byte per node
            assert_eq!(
                bytes.len(),
                header + tags + split_tree_bytes_exact(b),
                "payload matches 9b − 5 at b = {b}"
            );
        }
    }

    #[test]
    fn exact_split_tree_roundtrip_is_bit_identical() {
        let tree = sample_tree(20);
        let bytes = encode_split_tree_exact(&tree).unwrap();
        let back = decode_split_tree_exact(&bytes).unwrap();
        assert_eq!(back.attrs(), tree.attrs());
        assert_eq!(back.domain(), tree.domain());
        assert_eq!(back.total().to_bits(), tree.total().to_bits());
        assert_eq!(back.nodes().len(), tree.nodes().len());
        for lo in [0u32, 3, 8] {
            for hi in [8u32, 12, 15] {
                let a = tree.mass_in_box(&[(0, lo, hi)]);
                let b = back.mass_in_box(&[(0, lo, hi)]);
                assert_eq!(a.to_bits(), b.to_bits(), "estimate drifted in [{lo}, {hi}]");
            }
        }
    }

    #[test]
    fn exact_split_tree_rejects_malformed() {
        let tree = sample_tree(8);
        let bytes = encode_split_tree_exact(&tree).unwrap();
        assert!(decode_split_tree_exact(&bytes[..bytes.len() - 1]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(decode_split_tree_exact(&extra).is_err());
        // Self-referential root must be rejected by validate, not loop.
        let mut cyclic = encode_split_tree_exact(&sample_tree(2)).unwrap();
        let header = 2 + 10 * tree.attrs().len() + 8 + 4;
        // Overwrite the root's left child id with 0 (itself).
        cyclic[header + 1 + 2 + 4..header + 1 + 2 + 4 + 4].copy_from_slice(&0u32.to_le_bytes());
        assert!(decode_split_tree_exact(&cyclic).is_err());
    }

    #[test]
    fn exact_grid_roundtrip_is_bit_identical() {
        use crate::grid::GridBuilder;
        let schema = Schema::new(vec![("x", 16), ("y", 8)]).unwrap();
        let rows: Vec<Vec<u32>> = (0..512u32).map(|i| vec![(i * 7) % 16, (i * i) % 8]).collect();
        let dist = Relation::from_rows(schema, rows).unwrap().distribution();
        let mut builder = GridBuilder::new(&dist, SplitCriterion::MaxDiff).unwrap();
        for _ in 0..6 {
            builder.split_once();
        }
        let grid = builder.finish();
        let bytes = encode_grid_exact(&grid).unwrap();
        let back = decode_grid_exact(&bytes).unwrap();
        assert_eq!(back, grid);
        let a = grid.mass_in_box(&[(0, 2, 9), (1, 0, 3)]);
        let b = back.mass_in_box(&[(0, 2, 9), (1, 0, 3)]);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn exact_haar_roundtrip_is_bit_identical() {
        use crate::wavelet::HaarSynopsis;
        let schema = Schema::new(vec![("x", 16), ("y", 8)]).unwrap();
        let rows: Vec<Vec<u32>> = (0..512u32).map(|i| vec![(i * 7) % 16, (i * i) % 8]).collect();
        let dist = Relation::from_rows(schema, rows).unwrap().distribution();
        let syn = HaarSynopsis::build(&dist, 24, 1 << 16).unwrap();
        let bytes = encode_haar_exact(&syn).unwrap();
        let back = decode_haar_exact(&bytes, 1 << 16).unwrap();
        assert_eq!(back.attrs(), syn.attrs());
        assert_eq!(back.total().to_bits(), syn.total().to_bits());
        assert_eq!(back.coefficients(), syn.coefficients());
        let a = syn.reconstruct_dense();
        let b = back.reconstruct_dense();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn exact_haar_respects_cell_cap() {
        use crate::wavelet::HaarSynopsis;
        let schema = Schema::new(vec![("x", 16), ("y", 8)]).unwrap();
        let rows: Vec<Vec<u32>> = (0..64u32).map(|i| vec![i % 16, i % 8]).collect();
        let dist = Relation::from_rows(schema, rows).unwrap().distribution();
        let syn = HaarSynopsis::build(&dist, 8, 1 << 16).unwrap();
        let bytes = encode_haar_exact(&syn).unwrap();
        assert!(decode_haar_exact(&bytes, 16).is_err());
    }

    #[test]
    fn decode_rejects_malformed() {
        let tree = sample_tree(8);
        let bytes = encode_split_tree(&tree).unwrap();
        // Truncation.
        assert!(decode_split_tree(&bytes[..bytes.len() - 3]).is_err());
        // Trailing garbage.
        let mut extra = bytes.clone();
        extra.push(7);
        assert!(decode_split_tree(&extra).is_err());
        // Corrupt tag.
        let mut bad = bytes.clone();
        let tag_pos = 2 + 10 * tree.attrs().len();
        bad[tag_pos] = 9;
        assert!(decode_split_tree(&bad).is_err());
        // Empty input.
        assert!(decode_split_tree(&[]).is_err());
    }
}
