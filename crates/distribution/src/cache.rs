//! Memoized marginal entropies.
//!
//! Forward model selection (paper §3.1) scores every candidate interaction
//! edge `(u, v)` with separator `S` from four marginal entropies —
//! `E(S∪{u})`, `E(S∪{v})`, `E(S)`, `E(S∪{u,v})` — and the same subsets
//! recur across steps. [`EntropyCache`] computes each marginal entropy once
//! from the base relation and memoizes it by canonical [`AttrSet`] key. The
//! paper's full version highlights minimizing the *number of entropy
//! calculations* as the key cost lever of selection; the cache exposes a
//! counter so tests and benches can verify that optimization.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::attr::AttrSet;
use crate::fxhash::FxHashMap;
use crate::relation::Relation;

/// Memoizes `E(f_S)` for attribute subsets `S` of a fixed relation.
#[derive(Debug)]
pub struct EntropyCache<'a> {
    relation: &'a Relation,
    entropies: FxHashMap<AttrSet, f64>,
    computed: usize,
    hits: usize,
}

impl<'a> EntropyCache<'a> {
    /// Creates an empty cache over `relation`.
    #[must_use]
    pub fn new(relation: &'a Relation) -> Self {
        Self { relation, entropies: FxHashMap::default(), computed: 0, hits: 0 }
    }

    /// The relation the cache computes entropies from.
    #[must_use]
    pub fn relation(&self) -> &'a Relation {
        self.relation
    }

    /// Entropy `E(f_S)` of the marginal over `attrs`, computing and caching
    /// it on first access.
    ///
    /// # Panics
    ///
    /// Panics if `attrs` references attributes outside the relation's
    /// schema (callers derive subsets from the same schema).
    pub fn entropy(&mut self, attrs: &AttrSet) -> f64 {
        if let Some(&h) = self.entropies.get(attrs) {
            self.hits += 1;
            return h;
        }
        let h = if attrs.is_empty() {
            0.0
        } else {
            // Callers only query schema attributes; a miss (corrupt query)
            // contributes zero entropy rather than aborting selection.
            self.relation.marginal(attrs).map_or(0.0, |d| d.entropy())
        };
        self.computed += 1;
        self.entropies.insert(attrs.clone(), h);
        h
    }

    /// Number of marginal entropies actually computed (cache misses).
    #[must_use]
    pub fn computations(&self) -> usize {
        self.computed
    }

    /// Number of [`EntropyCache::entropy`] calls answered from the cache.
    #[must_use]
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Number of cached subsets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entropies.len()
    }

    /// `true` if nothing has been cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entropies.is_empty()
    }
}

/// A thread-safe [`EntropyCache`]: memoizes `E(f_S)` behind a read-write
/// lock so that parallel forward selection can score candidate edges from
/// shared entropies.
///
/// Entropy is a pure function of `(relation, attrs)`, so concurrent
/// fills are benign: two threads that race on the same subset compute the
/// same `f64` bit-for-bit, and whichever insert lands second is a no-op.
/// The entropy *values* observed are therefore identical to the serial
/// cache's; only [`SyncEntropyCache::computations`] can exceed the serial
/// count when races duplicate work (parallel selection avoids even that by
/// pre-warming deduplicated subsets).
#[derive(Debug)]
pub struct SyncEntropyCache<'a> {
    relation: &'a Relation,
    entropies: RwLock<FxHashMap<AttrSet, f64>>,
    computed: AtomicUsize,
    hits: AtomicUsize,
}

fn read_entropies(
    lock: &RwLock<FxHashMap<AttrSet, f64>>,
) -> RwLockReadGuard<'_, FxHashMap<AttrSet, f64>> {
    // A poisoned lock only means another thread panicked mid-insert; the
    // map itself is always in a consistent state (single insert calls).
    lock.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn write_entropies(
    lock: &RwLock<FxHashMap<AttrSet, f64>>,
) -> RwLockWriteGuard<'_, FxHashMap<AttrSet, f64>> {
    lock.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl<'a> SyncEntropyCache<'a> {
    /// Creates an empty cache over `relation`.
    #[must_use]
    pub fn new(relation: &'a Relation) -> Self {
        Self {
            relation,
            entropies: RwLock::new(FxHashMap::default()),
            computed: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
        }
    }

    /// The relation the cache computes entropies from.
    #[must_use]
    pub fn relation(&self) -> &'a Relation {
        self.relation
    }

    /// Entropy `E(f_S)` of the marginal over `attrs`, computing and
    /// caching it on first access. Takes `&self`: safe to call from many
    /// threads at once.
    pub fn entropy(&self, attrs: &AttrSet) -> f64 {
        if let Some(&h) = read_entropies(&self.entropies).get(attrs) {
            // lint:allow-next-line(atomic-ordering): monotonic stat counter; crate layering puts this below the telemetry registry
            self.hits.fetch_add(1, Ordering::Relaxed);
            return h;
        }
        // Compute outside any lock; a racing thread computes the same value.
        let h = self.compute(attrs);
        write_entropies(&self.entropies).entry(attrs.clone()).or_insert(h);
        h
    }

    /// `true` if the subset's entropy is already cached.
    #[must_use]
    pub fn contains(&self, attrs: &AttrSet) -> bool {
        read_entropies(&self.entropies).get(attrs).is_some()
    }

    /// Computes the entropy without touching the cache map (still counts
    /// toward [`SyncEntropyCache::computations`]). Used by parallel
    /// pre-warming, which inserts results in a deterministic batch.
    pub fn compute(&self, attrs: &AttrSet) -> f64 {
        let h = if attrs.is_empty() {
            0.0
        } else {
            // Callers only query schema attributes; a miss (corrupt query)
            // contributes zero entropy rather than aborting selection.
            self.relation.marginal(attrs).map_or(0.0, |d| d.entropy())
        };
        // lint:allow-next-line(atomic-ordering): monotonic stat counter; crate layering puts this below the telemetry registry
        self.computed.fetch_add(1, Ordering::Relaxed);
        h
    }

    /// Inserts a precomputed entropy (no-op if already present).
    pub fn insert(&self, attrs: AttrSet, entropy: f64) {
        write_entropies(&self.entropies).entry(attrs).or_insert(entropy);
    }

    /// Number of marginal entropies actually computed (cache misses).
    #[must_use]
    pub fn computations(&self) -> usize {
        // lint:allow-next-line(atomic-ordering): monotonic stat counter read; no ordering dependency with the cache map
        self.computed.load(Ordering::Relaxed)
    }

    /// Number of [`SyncEntropyCache::entropy`] calls answered from the
    /// cache (pure read hits; [`SyncEntropyCache::contains`] probes are
    /// not counted).
    #[must_use]
    pub fn hits(&self) -> usize {
        // lint:allow-next-line(atomic-ordering): monotonic stat counter read; no ordering dependency with the cache map
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cached subsets.
    #[must_use]
    pub fn len(&self) -> usize {
        read_entropies(&self.entropies).len()
    }

    /// `true` if nothing has been cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        read_entropies(&self.entropies).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Schema;

    fn relation() -> Relation {
        let schema = Schema::new(vec![("a", 4), ("b", 4), ("c", 2)]).unwrap();
        let rows: Vec<Vec<u32>> = (0..64u32).map(|i| vec![i % 4, (i / 4) % 4, i % 2]).collect();
        Relation::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn caches_and_counts() {
        let rel = relation();
        let mut cache = EntropyCache::new(&rel);
        let s = AttrSet::from_ids([0, 1]);
        let h1 = cache.entropy(&s);
        let h2 = cache.entropy(&s);
        assert_eq!(h1, h2);
        assert_eq!(cache.computations(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
        cache.entropy(&AttrSet::singleton(2));
        assert_eq!(cache.computations(), 2);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn matches_direct_computation() {
        let rel = relation();
        let mut cache = EntropyCache::new(&rel);
        for attrs in
            [AttrSet::singleton(0), AttrSet::from_ids([0, 2]), AttrSet::from_ids([0, 1, 2])]
        {
            let direct = rel.marginal(&attrs).unwrap().entropy();
            assert!((cache.entropy(&attrs) - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn sync_cache_matches_serial_cache() {
        let rel = relation();
        let mut serial = EntropyCache::new(&rel);
        let shared = SyncEntropyCache::new(&rel);
        let subsets = [
            AttrSet::empty(),
            AttrSet::singleton(1),
            AttrSet::from_ids([0, 1]),
            AttrSet::from_ids([0, 1, 2]),
        ];
        for attrs in &subsets {
            assert_eq!(serial.entropy(attrs).to_bits(), shared.entropy(attrs).to_bits());
        }
        assert_eq!(shared.computations(), serial.computations());
        assert_eq!(shared.len(), serial.len());
        assert!(shared.contains(&AttrSet::from_ids([0, 1])));
        assert!(!shared.contains(&AttrSet::singleton(0)));
        // Re-reads hit the cache.
        let hits_before = shared.hits();
        shared.entropy(&AttrSet::from_ids([0, 1]));
        assert_eq!(shared.computations(), serial.computations());
        assert_eq!(shared.hits(), hits_before + 1);
        // Prewarm path: compute + insert, then entropy() is a pure read.
        let s = AttrSet::from_ids([1, 2]);
        let h = shared.compute(&s);
        shared.insert(s.clone(), h);
        let before = shared.computations();
        assert_eq!(shared.entropy(&s).to_bits(), h.to_bits());
        assert_eq!(shared.computations(), before);
    }

    #[test]
    fn sync_cache_concurrent_reads_agree() {
        let rel = relation();
        let shared = SyncEntropyCache::new(&rel);
        let subsets: Vec<AttrSet> =
            vec![AttrSet::singleton(0), AttrSet::from_ids([0, 1]), AttrSet::from_ids([1, 2])];
        let baseline: Vec<u64> = subsets.iter().map(|s| shared.entropy(s).to_bits()).collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for (s, &bits) in subsets.iter().zip(&baseline) {
                        assert_eq!(shared.entropy(s).to_bits(), bits);
                    }
                });
            }
        });
        assert_eq!(shared.len(), subsets.len());
    }

    #[test]
    fn empty_set_entropy_zero() {
        let rel = relation();
        let mut cache = EntropyCache::new(&rel);
        assert_eq!(cache.entropy(&AttrSet::empty()), 0.0);
        assert!(!cache.is_empty());
    }
}
