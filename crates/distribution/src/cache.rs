//! Memoized marginal entropies.
//!
//! Forward model selection (paper §3.1) scores every candidate interaction
//! edge `(u, v)` with separator `S` from four marginal entropies —
//! `E(S∪{u})`, `E(S∪{v})`, `E(S)`, `E(S∪{u,v})` — and the same subsets
//! recur across steps. [`EntropyCache`] computes each marginal entropy once
//! from the base relation and memoizes it by canonical [`AttrSet`] key. The
//! paper's full version highlights minimizing the *number of entropy
//! calculations* as the key cost lever of selection; the cache exposes a
//! counter so tests and benches can verify that optimization.

use crate::attr::AttrSet;
use crate::fxhash::FxHashMap;
use crate::relation::Relation;

/// Memoizes `E(f_S)` for attribute subsets `S` of a fixed relation.
#[derive(Debug)]
pub struct EntropyCache<'a> {
    relation: &'a Relation,
    entropies: FxHashMap<AttrSet, f64>,
    computed: usize,
}

impl<'a> EntropyCache<'a> {
    /// Creates an empty cache over `relation`.
    #[must_use]
    pub fn new(relation: &'a Relation) -> Self {
        Self { relation, entropies: FxHashMap::default(), computed: 0 }
    }

    /// The relation the cache computes entropies from.
    #[must_use]
    pub fn relation(&self) -> &'a Relation {
        self.relation
    }

    /// Entropy `E(f_S)` of the marginal over `attrs`, computing and caching
    /// it on first access.
    ///
    /// # Panics
    ///
    /// Panics if `attrs` references attributes outside the relation's
    /// schema (callers derive subsets from the same schema).
    pub fn entropy(&mut self, attrs: &AttrSet) -> f64 {
        if let Some(&h) = self.entropies.get(attrs) {
            return h;
        }
        let h = if attrs.is_empty() {
            0.0
        } else {
            // Callers only query schema attributes; a miss (corrupt query)
            // contributes zero entropy rather than aborting selection.
            self.relation.marginal(attrs).map_or(0.0, |d| d.entropy())
        };
        self.computed += 1;
        self.entropies.insert(attrs.clone(), h);
        h
    }

    /// Number of marginal entropies actually computed (cache misses).
    #[must_use]
    pub fn computations(&self) -> usize {
        self.computed
    }

    /// Number of cached subsets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entropies.len()
    }

    /// `true` if nothing has been cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entropies.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Schema;

    fn relation() -> Relation {
        let schema = Schema::new(vec![("a", 4), ("b", 4), ("c", 2)]).unwrap();
        let rows: Vec<Vec<u32>> = (0..64u32).map(|i| vec![i % 4, (i / 4) % 4, i % 2]).collect();
        Relation::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn caches_and_counts() {
        let rel = relation();
        let mut cache = EntropyCache::new(&rel);
        let s = AttrSet::from_ids([0, 1]);
        let h1 = cache.entropy(&s);
        let h2 = cache.entropy(&s);
        assert_eq!(h1, h2);
        assert_eq!(cache.computations(), 1);
        assert_eq!(cache.len(), 1);
        cache.entropy(&AttrSet::singleton(2));
        assert_eq!(cache.computations(), 2);
    }

    #[test]
    fn matches_direct_computation() {
        let rel = relation();
        let mut cache = EntropyCache::new(&rel);
        for attrs in
            [AttrSet::singleton(0), AttrSet::from_ids([0, 2]), AttrSet::from_ids([0, 1, 2])]
        {
            let direct = rel.marginal(&attrs).unwrap().entropy();
            assert!((cache.entropy(&attrs) - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_set_entropy_zero() {
        let rel = relation();
        let mut cache = EntropyCache::new(&rel);
        assert_eq!(cache.entropy(&AttrSet::empty()), 0.0);
        assert!(!cache.is_empty());
    }
}
