//! Joint frequency distributions and information measures.
//!
//! This crate is the data-model substrate for the `dbhist` workspace, the
//! Rust reproduction of *"Independence is Good: Dependency-Based Histogram
//! Synopses for High-Dimensional Data"* (Deshpande, Garofalakis, Rastogi;
//! SIGMOD 2001).
//!
//! The paper models a relational table `R` over attributes `X_1, ..., X_n`
//! as an `n`-dimensional contingency table whose cells hold tuple counts
//! (the *joint frequency distribution*, paper §2.1). Everything downstream —
//! interaction models, clique histograms, selectivity estimation — operates
//! on this distribution and its *marginals*.
//!
//! # Contents
//!
//! * [`Schema`], [`Attr`], [`AttrSet`] — attribute metadata and ordered
//!   attribute-id sets.
//! * [`Relation`] — a materialized table of integer-coded rows.
//! * [`Distribution`] — a sparse frequency distribution over any subset of
//!   the schema's attributes, with projection ([`Distribution::marginal`]),
//!   Shannon entropy ([`Distribution::entropy`]), and Kullback–Leibler
//!   divergence ([`measures::kl_divergence`]).
//! * [`EntropyCache`] — memoized marginal entropies, the workhorse of
//!   forward model selection (each candidate edge is scored from four
//!   marginal entropies).
//! * [`fxhash`] — a small, fast, non-cryptographic hasher used for tuple
//!   keys throughout the workspace (built in-repo to keep the dependency
//!   surface minimal).
//!
//! # Example
//!
//! ```
//! use dbhist_distribution::{Schema, Relation, AttrSet};
//!
//! // Two correlated attributes and one independent attribute.
//! let schema = Schema::new(vec![("a", 4), ("b", 4), ("c", 2)]).unwrap();
//! let rows: Vec<Vec<u32>> = (0..64)
//!     .map(|i| vec![i % 4, i % 4, (i / 4) % 2])
//!     .collect();
//! let rel = Relation::from_rows(schema, rows).unwrap();
//! let joint = rel.distribution();
//!
//! // Marginal over {a, b}: only the diagonal cells are populated.
//! let ab = joint.marginal(&AttrSet::from_ids([0, 1])).unwrap();
//! assert_eq!(ab.support_size(), 4);
//! assert_eq!(ab.total(), 64.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod attr;
pub mod cache;
pub mod distribution;
pub mod error;
pub mod fxhash;
pub mod measures;
pub mod relation;

pub use attr::{Attr, AttrId, AttrSet, Schema};
pub use cache::{EntropyCache, SyncEntropyCache};
pub use distribution::Distribution;
pub use error::DistributionError;
pub use relation::Relation;
