//! Attribute metadata and ordered attribute-id sets.
//!
//! The paper indexes a relation's attributes `X_1, ..., X_n` and constantly
//! manipulates *subsets* of them: model generators (cliques), junction-tree
//! separators, query attribute sets, projection targets. [`AttrSet`] is the
//! workspace-wide representation of such subsets — a sorted, deduplicated
//! vector of [`AttrId`]s with the usual set algebra. Attribute dimensional
//! metadata (name, domain size) lives in [`Schema`].

use std::fmt;

use crate::error::DistributionError;

/// Index of an attribute within a [`Schema`] (the paper's `X_{id+1}`).
pub type AttrId = u16;

/// Metadata for a single attribute: a display name and the size of its
/// integer-coded value domain `0..domain_size` (paper §2.1 maps every domain
/// onto `{1, ..., |D_j|}`; we use zero-based coding).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Attr {
    /// Human-readable attribute name (e.g. `"age"`).
    pub name: String,
    /// Number of distinct values in the attribute's domain.
    pub domain_size: u32,
}

/// An ordered collection of attributes describing a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Schema {
    attrs: Vec<Attr>,
}

impl Schema {
    /// Builds a schema from `(name, domain_size)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError::InvalidSchema`] if no attributes are
    /// given, any domain is empty, or more than `u16::MAX` attributes are
    /// declared.
    pub fn new<S: Into<String>>(
        attrs: impl IntoIterator<Item = (S, u32)>,
    ) -> Result<Self, DistributionError> {
        let attrs: Vec<Attr> = attrs
            .into_iter()
            .map(|(name, domain_size)| Attr { name: name.into(), domain_size })
            .collect();
        if attrs.is_empty() {
            return Err(DistributionError::InvalidSchema {
                reason: "schema must declare at least one attribute".into(),
            });
        }
        if attrs.len() > usize::from(u16::MAX) {
            return Err(DistributionError::InvalidSchema {
                reason: format!("too many attributes ({})", attrs.len()),
            });
        }
        if let Some(bad) = attrs.iter().position(|a| a.domain_size == 0) {
            return Err(DistributionError::InvalidSchema {
                reason: format!("attribute {} ({:?}) has an empty domain", bad, attrs[bad].name),
            });
        }
        Ok(Self { attrs })
    }

    /// Number of attributes `n`.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Metadata for attribute `id`.
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError::UnknownAttr`] for out-of-range ids.
    pub fn attr(&self, id: AttrId) -> Result<&Attr, DistributionError> {
        self.attrs.get(usize::from(id)).ok_or(DistributionError::UnknownAttr { attr: id })
    }

    /// Domain size of attribute `id`, panicking on out-of-range ids.
    ///
    /// Internal call sites validate ids at construction; public callers
    /// should prefer [`Schema::attr`].
    #[must_use]
    pub fn domain_size(&self, id: AttrId) -> u32 {
        self.attrs[usize::from(id)].domain_size
    }

    /// Iterates over `(id, attr)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &Attr)> {
        self.attrs.iter().enumerate().map(|(i, a)| (i as AttrId, a))
    }

    /// The set of all attribute ids `{0, ..., n-1}`.
    #[must_use]
    pub fn all_attrs(&self) -> AttrSet {
        AttrSet::from_ids(0..self.attrs.len() as AttrId)
    }

    /// Looks up an attribute id by name.
    #[must_use]
    pub fn attr_by_name(&self, name: &str) -> Option<AttrId> {
        self.attrs.iter().position(|a| a.name == name).map(|i| i as AttrId)
    }

    /// Product of the domain sizes over `attrs` — the number of cells in the
    /// dense contingency table over that subset. Saturates at `u64::MAX`.
    #[must_use]
    pub fn state_space(&self, attrs: &AttrSet) -> u64 {
        attrs.iter().map(|a| u64::from(self.domain_size(a))).fold(1u64, u64::saturating_mul)
    }
}

/// A sorted, duplicate-free set of attribute ids.
///
/// All workspace code that names "a subset of the attributes" — model
/// cliques, separators, projection targets, query attribute lists — uses
/// this type. Ordering is ascending by id, which gives every set a canonical
/// form usable as a hash-map key (e.g. in [`crate::EntropyCache`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AttrSet {
    ids: Vec<AttrId>,
}

impl AttrSet {
    /// The empty set.
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a set from arbitrary ids (sorted and deduplicated).
    #[must_use]
    pub fn from_ids(ids: impl IntoIterator<Item = AttrId>) -> Self {
        let mut ids: Vec<AttrId> = ids.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        Self { ids }
    }

    /// A singleton set.
    #[must_use]
    pub fn singleton(id: AttrId) -> Self {
        Self { ids: vec![id] }
    }

    /// Number of attributes in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` if the set contains no attributes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Membership test (binary search).
    #[must_use]
    pub fn contains(&self, id: AttrId) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Position of `id` within the sorted set, if present.
    #[must_use]
    pub fn position(&self, id: AttrId) -> Option<usize> {
        self.ids.binary_search(&id).ok()
    }

    /// Iterates over the ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.ids.iter().copied()
    }

    /// The ids as a sorted slice.
    #[must_use]
    pub fn as_slice(&self) -> &[AttrId] {
        &self.ids
    }

    /// Set union.
    #[must_use]
    pub fn union(&self, other: &Self) -> Self {
        let mut out = Vec::with_capacity(self.ids.len() + other.ids.len());
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.ids[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.ids[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.ids[i..]);
        out.extend_from_slice(&other.ids[j..]);
        Self { ids: out }
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(&self, other: &Self) -> Self {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        Self { ids: out }
    }

    /// Set difference `self \ other`.
    #[must_use]
    pub fn difference(&self, other: &Self) -> Self {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() {
            if j >= other.ids.len() || self.ids[i] < other.ids[j] {
                out.push(self.ids[i]);
                i += 1;
            } else if self.ids[i] > other.ids[j] {
                j += 1;
            } else {
                i += 1;
                j += 1;
            }
        }
        Self { ids: out }
    }

    /// `true` if `self ⊆ other`.
    #[must_use]
    pub fn is_subset(&self, other: &Self) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => return false,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        i == self.ids.len()
    }

    /// `true` if the two sets share no attribute.
    ///
    /// Merge-walks both sorted id lists and returns at the first common
    /// id — no intersection is allocated (this sits on query-planning hot
    /// paths).
    #[must_use]
    pub fn is_disjoint(&self, other: &Self) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }

    /// In-place set union: `self ← self ∪ other`.
    ///
    /// Allocation-free when `other ⊆ self`; otherwise grows `self` once
    /// and merges from the back in `O(|self| + |other|)`. The planner's
    /// hot loops (cover accumulation, keep-set maintenance) use this to
    /// avoid the fresh vector [`AttrSet::union`] allocates per call.
    pub fn union_with(&mut self, other: &Self) {
        // Count the ids of `other` missing from `self`.
        let missing = {
            let (mut i, mut j, mut missing) = (0, 0, 0usize);
            while j < other.ids.len() {
                if i >= self.ids.len() || self.ids[i] > other.ids[j] {
                    missing += 1;
                    j += 1;
                } else if self.ids[i] < other.ids[j] {
                    i += 1;
                } else {
                    i += 1;
                    j += 1;
                }
            }
            missing
        };
        if missing == 0 {
            return;
        }
        let old_len = self.ids.len();
        self.ids.resize(old_len + missing, 0);
        // Merge from the back so no element is overwritten before read.
        let (mut i, mut j, mut w) = (old_len, other.ids.len(), self.ids.len());
        while j > 0 {
            if i > 0 && self.ids[i - 1] > other.ids[j - 1] {
                w -= 1;
                i -= 1;
                self.ids[w] = self.ids[i];
            } else {
                if i > 0 && self.ids[i - 1] == other.ids[j - 1] {
                    i -= 1;
                }
                w -= 1;
                j -= 1;
                self.ids[w] = other.ids[j];
            }
        }
        // Remaining prefix of `self` is already in place (w == i here).
        debug_assert_eq!(w, i);
    }

    /// In-place set intersection: `self ← self ∩ other`.
    ///
    /// Allocation-free: retains the common ids with a two-pointer
    /// compaction walk over the sorted lists.
    pub fn intersect_with(&mut self, other: &Self) {
        let (mut i, mut j, mut w) = (0, 0, 0usize);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    self.ids[w] = self.ids[i];
                    w += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        self.ids.truncate(w);
    }

    /// Returns a copy with `id` inserted.
    #[must_use]
    pub fn with(&self, id: AttrId) -> Self {
        match self.ids.binary_search(&id) {
            Ok(_) => self.clone(),
            Err(pos) => {
                let mut ids = self.ids.clone();
                ids.insert(pos, id);
                Self { ids }
            }
        }
    }

    /// Returns a copy with `id` removed (no-op if absent).
    #[must_use]
    pub fn without(&self, id: AttrId) -> Self {
        match self.ids.binary_search(&id) {
            Ok(pos) => {
                let mut ids = self.ids.clone();
                ids.remove(pos);
                Self { ids }
            }
            Err(_) => self.clone(),
        }
    }
}

impl fmt::Display for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, id) in self.ids.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{id}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<AttrId> for AttrSet {
    fn from_iter<T: IntoIterator<Item = AttrId>>(iter: T) -> Self {
        Self::from_ids(iter)
    }
}

impl<'a> IntoIterator for &'a AttrSet {
    type Item = AttrId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, AttrId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.ids.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[AttrId]) -> AttrSet {
        AttrSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn schema_rejects_empty() {
        assert!(Schema::new(Vec::<(&str, u32)>::new()).is_err());
        assert!(Schema::new(vec![("a", 0)]).is_err());
    }

    #[test]
    fn schema_lookup() {
        let s = Schema::new(vec![("a", 4), ("b", 7)]).unwrap();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.attr(1).unwrap().name, "b");
        assert_eq!(s.domain_size(0), 4);
        assert_eq!(s.attr_by_name("b"), Some(1));
        assert_eq!(s.attr_by_name("zzz"), None);
        assert!(s.attr(5).is_err());
        assert_eq!(s.all_attrs(), set(&[0, 1]));
    }

    #[test]
    fn state_space_products() {
        let s = Schema::new(vec![("a", 4), ("b", 7), ("c", 10)]).unwrap();
        assert_eq!(s.state_space(&set(&[0, 1])), 28);
        assert_eq!(s.state_space(&set(&[0, 1, 2])), 280);
        assert_eq!(s.state_space(&AttrSet::empty()), 1);
    }

    #[test]
    fn from_ids_sorts_and_dedups() {
        let s = AttrSet::from_ids([3, 1, 3, 2, 1]);
        assert_eq!(s.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn union_intersection_difference() {
        let a = set(&[1, 3, 5]);
        let b = set(&[2, 3, 4, 5]);
        assert_eq!(a.union(&b), set(&[1, 2, 3, 4, 5]));
        assert_eq!(a.intersection(&b), set(&[3, 5]));
        assert_eq!(a.difference(&b), set(&[1]));
        assert_eq!(b.difference(&a), set(&[2, 4]));
    }

    #[test]
    fn subset_and_disjoint() {
        let a = set(&[1, 3]);
        let b = set(&[1, 2, 3]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(AttrSet::empty().is_subset(&a));
        assert!(set(&[7, 9]).is_disjoint(&a));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn in_place_union_matches_allocating_union() {
        let cases: &[(&[AttrId], &[AttrId])] = &[
            (&[], &[]),
            (&[1, 3, 5], &[]),
            (&[], &[2, 4]),
            (&[1, 3, 5], &[2, 3, 4, 6]),
            (&[1, 2, 3], &[1, 2, 3]),
            (&[5, 6], &[1, 2]),
            (&[1, 2], &[5, 6]),
            (&[2, 4], &[1, 2, 3, 4, 5]),
        ];
        for (a, b) in cases {
            let (a, b) = (set(a), set(b));
            let mut in_place = a.clone();
            in_place.union_with(&b);
            assert_eq!(in_place, a.union(&b), "{a} ∪ {b}");
        }
    }

    #[test]
    fn in_place_intersection_matches_allocating_intersection() {
        let cases: &[(&[AttrId], &[AttrId])] = &[
            (&[], &[1, 2]),
            (&[1, 3, 5], &[2, 3, 4, 5]),
            (&[1, 2, 3], &[1, 2, 3]),
            (&[1, 2], &[5, 6]),
            (&[0, 2, 4, 6, 8], &[1, 2, 3, 4]),
        ];
        for (a, b) in cases {
            let (a, b) = (set(a), set(b));
            let mut in_place = a.clone();
            in_place.intersect_with(&b);
            assert_eq!(in_place, a.intersection(&b), "{a} ∩ {b}");
        }
    }

    #[test]
    fn disjoint_early_exit_agrees_with_intersection() {
        let cases: &[(&[AttrId], &[AttrId])] = &[
            (&[], &[]),
            (&[1], &[]),
            (&[1, 3, 5], &[2, 4, 6]),
            (&[1, 3, 5], &[5, 7]),
            (&[9], &[1, 2, 9]),
        ];
        for (a, b) in cases {
            let (a, b) = (set(a), set(b));
            assert_eq!(a.is_disjoint(&b), a.intersection(&b).is_empty(), "{a} vs {b}");
            assert_eq!(b.is_disjoint(&a), a.is_disjoint(&b));
        }
    }

    #[test]
    fn with_without() {
        let a = set(&[1, 3]);
        assert_eq!(a.with(2), set(&[1, 2, 3]));
        assert_eq!(a.with(3), a);
        assert_eq!(a.without(1), set(&[3]));
        assert_eq!(a.without(9), a);
    }

    #[test]
    fn display_and_membership() {
        let a = set(&[1, 3]);
        assert_eq!(a.to_string(), "{1,3}");
        assert!(a.contains(3));
        assert!(!a.contains(2));
        assert_eq!(a.position(3), Some(1));
        assert_eq!(a.position(2), None);
    }

    #[test]
    fn canonical_ordering_as_key() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(AttrSet::from_ids([2, 1]), "x");
        assert_eq!(m.get(&AttrSet::from_ids([1, 2])), Some(&"x"));
    }
}
