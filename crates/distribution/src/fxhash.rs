//! A small, fast, non-cryptographic hasher for integer-heavy keys.
//!
//! The workspace hashes millions of short `u32` tuples (distribution cells)
//! while building marginals and scoring candidate model edges. The standard
//! library's SipHash is collision-resistant but slow for such keys; the
//! Fx algorithm (popularized by rustc's `FxHasher`) is the usual remedy.
//! We implement it here rather than adding a dependency — it is ~30 lines
//! and HashDoS resistance is irrelevant for in-memory synopsis construction.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant used by the Fx word-mixing step (64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
/// Rotation applied before each multiply; spreads low-entropy input bits.
const ROTATE: u32 = 5;

/// A fast, non-cryptographic [`Hasher`] in the style of rustc's `FxHasher`.
///
/// Suitable for hash maps keyed by small integers or short integer tuples.
/// Not suitable for hashing untrusted input.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // chunks_exact(8) guarantees the width; zero is the (dead)
            // fallback arm, not a reachable hash input.
            let word = u64::from_le_bytes(chunk.try_into().unwrap_or([0u8; 8]));
            self.add_to_hash(word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// [`std::hash::BuildHasher`] producing [`FxHasher`] instances.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A [`std::collections::HashMap`] using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A [`std::collections::HashSet`] using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(value: &T) -> u64 {
        let mut hasher = FxHasher::default();
        value.hash(&mut hasher);
        hasher.finish()
    }

    #[test]
    fn deterministic() {
        let key: Vec<u32> = vec![1, 2, 3, 4];
        assert_eq!(hash_one(&key), hash_one(&key));
    }

    #[test]
    fn distinct_tuples_hash_differently() {
        // Not a guarantee of the algorithm, but these specific nearby keys
        // must not collide for the maps to perform sanely.
        let a = hash_one(&[1u32, 2, 3]);
        let b = hash_one(&[1u32, 2, 4]);
        let c = hash_one(&[1u32, 3, 2]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn order_sensitive() {
        assert_ne!(hash_one(&[1u32, 2]), hash_one(&[2u32, 1]));
    }

    #[test]
    fn byte_stream_tail_handled() {
        let mut h1 = FxHasher::default();
        h1.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn build_hasher_default_usable() {
        let map: FxHashMap<u32, u32> = FxHashMap::default();
        assert!(map.is_empty());
        let built = FxBuildHasher::default().build_hasher();
        assert_eq!(built.finish(), 0);
    }

    #[test]
    fn map_roundtrip() {
        let mut map: FxHashMap<Vec<u32>, f64> = FxHashMap::default();
        for i in 0..1000u32 {
            map.insert(vec![i, i * 2, i * 3], f64::from(i));
        }
        assert_eq!(map.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(map[&vec![i, i * 2, i * 3]], f64::from(i));
        }
    }
}
