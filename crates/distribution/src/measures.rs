//! Information-theoretic distance measures (paper §2.3).
//!
//! Model accuracy is quantified by the Kullback–Leibler information
//! divergence `D(f, f̂_M)` between the true joint frequency distribution and
//! the model estimate. For *decomposable* models the divergence collapses to
//! a combination of marginal entropies — no estimate materialization is
//! needed — which is what makes forward selection tractable:
//!
//! ```text
//! D(f, f̂_M) = Σ_cliques E(f_C) − Σ_separators E(f_S) − E(f)
//! ```
//!
//! and the *improvement* of adding edge `(u, v)` over separator `S` is the
//! conditional mutual information `I(u; v | S)`.

use crate::distribution::Distribution;

/// Kullback–Leibler divergence `D(f, f̂)` in nats (paper §2.3), computed
/// over the support of `f` with `estimate` supplying the model frequency
/// `f̂(key)` for each populated cell.
///
/// Both `f` and the estimates are interpreted as *frequencies* summing to
/// the same total `N`; the divergence is between the normalized
/// distributions, exactly the paper's definition
/// `D = (1/N) Σ f · log(f / f̂)`.
///
/// Returns `f64::INFINITY` when the model assigns zero (or negative)
/// frequency to a populated cell.
pub fn kl_divergence(f: &Distribution, mut estimate: impl FnMut(&[u32]) -> f64) -> f64 {
    let n = f.total();
    if n <= 0.0 {
        return 0.0;
    }
    let mut sum = 0.0;
    for (key, freq) in f.iter() {
        if freq <= 0.0 {
            continue;
        }
        let e = estimate(key);
        if e <= 0.0 {
            return f64::INFINITY;
        }
        sum += freq * (freq / e).ln();
    }
    sum / n
}

/// Divergence of a decomposable model from marginal entropies:
/// `D = Σ E(C_i) − Σ E(S_ij) − E(f)` where `C_i` ranges over the model's
/// cliques and `S_ij` over the junction-tree separators.
///
/// Always ≥ 0 up to floating-point error for entropies of consistent
/// marginals of one distribution.
#[must_use]
pub fn decomposable_divergence(
    joint_entropy: f64,
    clique_entropies: &[f64],
    separator_entropies: &[f64],
) -> f64 {
    clique_entropies.iter().sum::<f64>() - separator_entropies.iter().sum::<f64>() - joint_entropy
}

/// Conditional mutual information `I(u; v | S)` from marginal entropies:
/// `E(S∪{u}) + E(S∪{v}) − E(S) − E(S∪{u,v})`.
///
/// This is exactly the decrease in model divergence achieved by merging the
/// cliques `S∪{u}` and `S∪{v}` into `S∪{u,v}` during forward selection.
#[must_use]
pub fn conditional_mutual_information(h_su: f64, h_sv: f64, h_s: f64, h_suv: f64) -> f64 {
    h_su + h_sv - h_s - h_suv
}

/// The chi-square distance approximation `χ²(f, f̂) ≈ 2 · D(f, f̂)`
/// (paper §2.3: `D ≈ ½ χ²`).
#[must_use]
pub fn chi_square_from_divergence(divergence: f64) -> f64 {
    2.0 * divergence
}

/// The likelihood-ratio (`G²`) statistic for testing a model against data:
/// `G² = 2 · N · D(f, f̂_M)` in natural-log units. Under the null hypothesis
/// that the simpler model generated the data, `G²` is asymptotically
/// chi-square distributed with the appropriate degrees of freedom.
#[must_use]
pub fn g_squared(total: f64, divergence: f64) -> f64 {
    2.0 * total * divergence
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{AttrSet, Schema};
    use crate::relation::Relation;

    fn xy_relation(correlated: bool) -> Relation {
        let schema = Schema::new(vec![("x", 4), ("y", 4)]).unwrap();
        let rows: Vec<Vec<u32>> = if correlated {
            (0..64u32).map(|i| vec![i % 4, i % 4]).collect()
        } else {
            (0..64u32).map(|i| vec![i % 4, (i / 4) % 4]).collect()
        };
        Relation::from_rows(schema, rows).unwrap()
    }

    fn independence_divergence(rel: &Relation) -> f64 {
        let joint = rel.distribution();
        let fx = joint.marginal(&AttrSet::singleton(0)).unwrap();
        let fy = joint.marginal(&AttrSet::singleton(1)).unwrap();
        let n = joint.total();
        kl_divergence(&joint, |key| fx.frequency(&[key[0]]) * fy.frequency(&[key[1]]) / n)
    }

    #[test]
    fn kl_zero_for_true_independence() {
        let rel = xy_relation(false);
        assert!(independence_divergence(&rel).abs() < 1e-12);
    }

    #[test]
    fn kl_positive_for_correlation() {
        let rel = xy_relation(true);
        let d = independence_divergence(&rel);
        // Perfect dependence of two uniform 4-ary variables: D = I(X;Y) = ln 4.
        assert!((d - (4.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn kl_infinite_when_model_misses_support() {
        let rel = xy_relation(true);
        let joint = rel.distribution();
        let d = kl_divergence(&joint, |_| 0.0);
        assert!(d.is_infinite());
    }

    #[test]
    fn kl_empty_distribution_is_zero() {
        let schema = Schema::new(vec![("x", 2)]).unwrap();
        let d = Distribution::empty(schema, AttrSet::singleton(0)).unwrap();
        assert_eq!(kl_divergence(&d, |_| 1.0), 0.0);
    }

    #[test]
    fn entropy_decomposition_matches_direct_kl() {
        // Model [XY] with singleton clique {X},{Y}: full independence.
        let rel = xy_relation(true);
        let joint = rel.distribution();
        let hx = joint.marginal(&AttrSet::singleton(0)).unwrap().entropy();
        let hy = joint.marginal(&AttrSet::singleton(1)).unwrap().entropy();
        let via_entropies = decomposable_divergence(joint.entropy(), &[hx, hy], &[]);
        let direct = independence_divergence(&rel);
        assert!((via_entropies - direct).abs() < 1e-10);
    }

    #[test]
    fn cmi_equals_divergence_drop() {
        // Adding edge (x, y) with empty separator: improvement = I(x;y).
        let rel = xy_relation(true);
        let joint = rel.distribution();
        let hx = joint.marginal(&AttrSet::singleton(0)).unwrap().entropy();
        let hy = joint.marginal(&AttrSet::singleton(1)).unwrap().entropy();
        let hxy = joint.entropy();
        let i = conditional_mutual_information(hx, hy, 0.0, hxy);
        assert!((i - independence_divergence(&rel)).abs() < 1e-10);
    }

    #[test]
    fn g_squared_and_chi_square_scale() {
        assert_eq!(g_squared(100.0, 0.5), 100.0);
        assert_eq!(chi_square_from_divergence(0.5), 1.0);
    }
}
