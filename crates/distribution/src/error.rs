//! Error types for distribution construction and manipulation.

use std::fmt;

use crate::attr::AttrId;

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DistributionError {
    /// A schema was declared with no attributes or an attribute with an
    /// empty domain.
    InvalidSchema {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A row's arity does not match the schema.
    ArityMismatch {
        /// Number of attributes the schema declares.
        expected: usize,
        /// Number of values the offending row supplied.
        actual: usize,
    },
    /// A value lies outside its attribute's declared domain `0..domain_size`.
    ValueOutOfDomain {
        /// Attribute whose domain was violated.
        attr: AttrId,
        /// The offending value.
        value: u32,
        /// The attribute's domain size.
        domain_size: u32,
    },
    /// An operation referenced an attribute id not present in the schema.
    UnknownAttr {
        /// The unknown attribute id.
        attr: AttrId,
    },
    /// A projection requested attributes that are not a subset of the
    /// distribution's attributes.
    NotASubset {
        /// The first requested attribute that is missing.
        missing: AttrId,
    },
}

impl fmt::Display for DistributionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidSchema { reason } => write!(f, "invalid schema: {reason}"),
            Self::ArityMismatch { expected, actual } => {
                write!(f, "row arity {actual} does not match schema arity {expected}")
            }
            Self::ValueOutOfDomain { attr, value, domain_size } => {
                write!(f, "value {value} of attribute {attr} outside domain 0..{domain_size}")
            }
            Self::UnknownAttr { attr } => write!(f, "attribute {attr} not in schema"),
            Self::NotASubset { missing } => {
                write!(f, "projection attributes are not a subset (attribute {missing} missing)")
            }
        }
    }
}

impl std::error::Error for DistributionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DistributionError::ArityMismatch { expected: 3, actual: 2 };
        assert!(e.to_string().contains("arity 2"));
        let e = DistributionError::ValueOutOfDomain { attr: 1, value: 9, domain_size: 4 };
        assert!(e.to_string().contains("0..4"));
        let e = DistributionError::InvalidSchema { reason: "empty".into() };
        assert!(e.to_string().contains("empty"));
        let e = DistributionError::UnknownAttr { attr: 7 };
        assert!(e.to_string().contains('7'));
        let e = DistributionError::NotASubset { missing: 2 };
        assert!(e.to_string().contains("subset"));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<DistributionError>();
    }
}
