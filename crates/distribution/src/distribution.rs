//! Sparse frequency distributions over attribute subsets.
//!
//! A [`Distribution`] is a sparse contingency table: a map from value tuples
//! (over a fixed, sorted [`AttrSet`]) to non-negative frequencies. The joint
//! distribution of a relation and every marginal of it are all instances of
//! this one type, which keeps projection ([`Distribution::marginal`]) and
//! information measures ([`Distribution::entropy`]) uniform.

use crate::attr::{AttrId, AttrSet, Schema};
use crate::error::DistributionError;
use crate::relation::Relation;
use std::collections::BTreeMap;

/// A sparse frequency distribution over a subset of a schema's attributes.
///
/// Cell keys are value tuples ordered consistently with the ascending order
/// of [`Distribution::attrs`]. Frequencies are `f64` so the same type serves
/// exact counts and model-estimated (fractional) frequencies.
///
/// Cells live in a `BTreeMap` so every iteration — scoring, bucket
/// construction, serialization — visits them in lexicographic key order.
/// Hash-map iteration order leaked into float accumulation order here once;
/// ordered storage makes the bit-identity invariant structural rather than
/// something each call site must re-establish by sorting.
#[derive(Debug, Clone)]
pub struct Distribution {
    schema: Schema,
    attrs: AttrSet,
    cells: BTreeMap<Box<[u32]>, f64>,
    total: f64,
}

impl Distribution {
    /// Creates an empty distribution over `attrs`.
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError::UnknownAttr`] if `attrs` references an
    /// attribute outside the schema.
    pub fn empty(schema: Schema, attrs: AttrSet) -> Result<Self, DistributionError> {
        for a in attrs.iter() {
            schema.attr(a)?;
        }
        Ok(Self { schema, attrs, cells: BTreeMap::new(), total: 0.0 })
    }

    /// Builds the marginal distribution over `attrs` by a single pass over
    /// a relation's rows.
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError::UnknownAttr`] if `attrs` references an
    /// attribute outside the relation's schema.
    pub fn from_relation(rel: &Relation, attrs: &AttrSet) -> Result<Self, DistributionError> {
        let mut dist = Self::empty(rel.schema().clone(), attrs.clone())?;
        let cols: Vec<usize> = attrs.iter().map(usize::from).collect();
        let mut key: Vec<u32> = vec![0; cols.len()];
        for row in rel.rows() {
            for (k, &c) in key.iter_mut().zip(&cols) {
                *k = row[c];
            }
            dist.add(&key, 1.0);
        }
        #[cfg(debug_assertions)]
        if let Err(violation) = dist.validate() {
            panic!("distribution invariant violated: {violation}"); // lint:allow(panic-surface): debug-only invariant validator
        }
        Ok(dist)
    }

    /// Structural invariant check (see DESIGN.md, "Invariants & lint
    /// policy"): every cell key must match the attribute arity, every
    /// frequency must be finite and non-negative, and the cached total
    /// must equal the cell sum. Run automatically after construction from
    /// a relation and after projection in debug builds.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let arity = self.attrs.len();
        let mut sum = 0.0f64;
        for (key, f) in &self.cells {
            if key.len() != arity {
                return Err(format!(
                    "cell key of arity {} in a {arity}-ary distribution",
                    key.len()
                ));
            }
            if !f.is_finite() || *f < 0.0 {
                return Err(format!("non-finite or negative frequency {f}"));
            }
            sum += f;
        }
        let drift = (sum - self.total).abs();
        if drift > 1e-6 * (1.0 + self.total.abs()) {
            return Err(format!(
                "cached total {} drifts from cell sum {sum} by {drift}",
                self.total
            ));
        }
        Ok(())
    }

    /// Adds `weight` to the cell at `key` (which must follow the ascending
    /// attribute order of [`Distribution::attrs`]).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the key arity mismatches the attribute set.
    pub fn add(&mut self, key: &[u32], weight: f64) {
        debug_assert_eq!(key.len(), self.attrs.len());
        self.total += weight;
        if let Some(cell) = self.cells.get_mut(key) {
            *cell += weight;
        } else {
            self.cells.insert(key.into(), weight);
        }
    }

    /// The schema this distribution's attributes belong to.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The attribute subset the distribution ranges over.
    #[must_use]
    pub fn attrs(&self) -> &AttrSet {
        &self.attrs
    }

    /// Total mass `N = Σ f` (the paper's tuple count for exact counts).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of non-zero cells.
    #[must_use]
    pub fn support_size(&self) -> usize {
        self.cells.len()
    }

    /// Frequency of a specific value combination (0 for absent cells).
    #[must_use]
    pub fn frequency(&self, key: &[u32]) -> f64 {
        self.cells.get(key).copied().unwrap_or(0.0)
    }

    /// Iterates over `(key, frequency)` pairs for non-zero cells in
    /// ascending lexicographic key order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u32], f64)> {
        self.cells.iter().map(|(k, &v)| (k.as_ref(), v))
    }

    /// Projects the distribution onto `attrs ⊆ self.attrs()` by summing
    /// frequencies over the projected-away attributes (paper §2.1).
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError::NotASubset`] if `attrs` is not a subset
    /// of this distribution's attributes.
    pub fn marginal(&self, attrs: &AttrSet) -> Result<Distribution, DistributionError> {
        let mut positions: Vec<usize> = Vec::with_capacity(attrs.len());
        for a in attrs.iter() {
            let Some(p) = self.attrs.position(a) else {
                return Err(DistributionError::NotASubset { missing: a });
            };
            positions.push(p);
        }
        let mut out = Self::empty(self.schema.clone(), attrs.clone())?;
        let mut key: Vec<u32> = vec![0; positions.len()];
        for (cell, &f) in &self.cells {
            for (k, &p) in key.iter_mut().zip(&positions) {
                *k = cell[p];
            }
            out.add(&key, f);
        }
        #[cfg(debug_assertions)]
        {
            if let Err(violation) = out.validate() {
                panic!("distribution invariant violated: {violation}"); // lint:allow(panic-surface): debug-only invariant validator
            }
            let drift = (out.total() - self.total()).abs();
            assert!(
                drift <= 1e-6 * (1.0 + self.total().abs()),
                "projection must preserve mass; drifted by {drift}"
            );
        }
        Ok(out)
    }

    /// Shannon entropy of the frequency distribution, in nats
    /// (paper §2.1): `E(f_S) = log N − (1/N) Σ f log f`.
    ///
    /// Returns `0` for an empty distribution.
    #[must_use]
    pub fn entropy(&self) -> f64 {
        if self.total <= 0.0 {
            return 0.0;
        }
        let n = self.total;
        let mut sum = 0.0;
        for &f in self.cells.values() {
            if f > 0.0 {
                sum += f * f.ln();
            }
        }
        n.ln() - sum / n
    }

    /// Restricts the distribution to cells matching a conjunction of
    /// inclusive ranges and sums their mass — the exact range-count over
    /// this marginal. Attributes absent from the distribution are ignored.
    #[must_use]
    pub fn range_mass(&self, ranges: &[(AttrId, u32, u32)]) -> f64 {
        let constraints: Vec<(usize, u32, u32)> = ranges
            .iter()
            .filter_map(|&(a, lo, hi)| self.attrs.position(a).map(|p| (p, lo, hi)))
            .collect();
        self.cells
            .iter()
            .filter(|(k, _)| constraints.iter().all(|&(p, lo, hi)| k[p] >= lo && k[p] <= hi))
            .map(|(_, &f)| f)
            .sum()
    }

    /// Sorted distinct `(value, aggregated frequency)` pairs along one of
    /// the distribution's attributes — the view histogram construction
    /// needs to find split points.
    ///
    /// # Panics
    ///
    /// Panics if `attr` is not in [`Distribution::attrs`].
    #[must_use]
    pub fn values_along(&self, attr: AttrId) -> Vec<(u32, f64)> {
        #[allow(clippy::expect_used)]
        let p = self
            .attrs
            .position(attr)
            .expect("values_along: attribute must belong to the distribution"); // lint:allow(panic-surface): documented panic contract of values_along
        let mut agg: BTreeMap<u32, f64> = BTreeMap::new();
        for (k, &f) in &self.cells {
            *agg.entry(k[p]).or_insert(0.0) += f;
        }
        agg.into_iter().collect()
    }

    /// Multiplies every frequency by `scale` (used to normalize samples up
    /// to population size).
    pub fn scale(&mut self, scale: f64) {
        for f in self.cells.values_mut() {
            *f *= scale;
        }
        self.total *= scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diagonal_relation() -> Relation {
        // a == b always; c cycles independently.
        let schema = Schema::new(vec![("a", 4), ("b", 4), ("c", 2)]).unwrap();
        let rows: Vec<Vec<u32>> = (0..64u32).map(|i| vec![i % 4, i % 4, (i / 4) % 2]).collect();
        Relation::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn joint_from_relation() {
        let rel = diagonal_relation();
        let d = rel.distribution();
        assert_eq!(d.total(), 64.0);
        assert_eq!(d.support_size(), 8); // 4 diagonal (a,b) x 2 values of c
        assert_eq!(d.frequency(&[1, 1, 0]), 8.0);
        assert_eq!(d.frequency(&[1, 2, 0]), 0.0);
    }

    #[test]
    fn marginal_sums_out() {
        let rel = diagonal_relation();
        let d = rel.distribution();
        let ab = d.marginal(&AttrSet::from_ids([0, 1])).unwrap();
        assert_eq!(ab.total(), 64.0);
        assert_eq!(ab.support_size(), 4);
        assert_eq!(ab.frequency(&[2, 2]), 16.0);
        let c = d.marginal(&AttrSet::from_ids([2])).unwrap();
        assert_eq!(c.frequency(&[0]), 32.0);
        assert_eq!(c.frequency(&[1]), 32.0);
    }

    #[test]
    fn marginal_requires_subset() {
        let rel = diagonal_relation();
        let ab = rel.marginal(&AttrSet::from_ids([0, 1])).unwrap();
        let err = ab.marginal(&AttrSet::from_ids([0, 2])).unwrap_err();
        assert_eq!(err, DistributionError::NotASubset { missing: 2 });
    }

    #[test]
    fn marginal_consistency_direct_vs_projected() {
        let rel = diagonal_relation();
        let via_joint = rel.distribution().marginal(&AttrSet::from_ids([0, 2])).unwrap();
        let direct = rel.marginal(&AttrSet::from_ids([0, 2])).unwrap();
        assert_eq!(via_joint.support_size(), direct.support_size());
        for (k, f) in direct.iter() {
            assert_eq!(via_joint.frequency(k), f);
        }
    }

    #[test]
    fn entropy_uniform_and_degenerate() {
        let schema = Schema::new(vec![("x", 8)]).unwrap();
        // Uniform over 8 values: entropy = ln 8.
        let rows: Vec<Vec<u32>> = (0..8u32).map(|i| vec![i]).collect();
        let rel = Relation::from_rows(schema.clone(), rows).unwrap();
        let d = rel.distribution();
        assert!((d.entropy() - (8.0f64).ln()).abs() < 1e-12);

        // Point mass: entropy = 0.
        let rel = Relation::from_rows(schema, vec![vec![3]; 10]).unwrap();
        assert!(rel.distribution().entropy().abs() < 1e-12);
    }

    #[test]
    fn entropy_empty_is_zero() {
        let schema = Schema::new(vec![("x", 8)]).unwrap();
        let d = Distribution::empty(schema, AttrSet::singleton(0)).unwrap();
        assert_eq!(d.entropy(), 0.0);
    }

    #[test]
    fn entropy_chain_rule_independent() {
        // For independent attributes H(X,Y) = H(X) + H(Y).
        let schema = Schema::new(vec![("x", 4), ("y", 3)]).unwrap();
        let mut rows = Vec::new();
        for x in 0..4u32 {
            for y in 0..3u32 {
                for _ in 0..(x + 1) {
                    rows.push(vec![x, y]);
                }
            }
        }
        let rel = Relation::from_rows(schema, rows).unwrap();
        let joint = rel.distribution();
        let hx = joint.marginal(&AttrSet::singleton(0)).unwrap().entropy();
        let hy = joint.marginal(&AttrSet::singleton(1)).unwrap().entropy();
        assert!((joint.entropy() - hx - hy).abs() < 1e-10);
    }

    #[test]
    fn range_mass_matches_relation_count() {
        let rel = diagonal_relation();
        let d = rel.distribution();
        let ranges = vec![(0u16, 1u32, 2u32), (2u16, 0u32, 0u32)];
        assert_eq!(d.range_mass(&ranges), rel.count_range(&ranges) as f64);
        // Constraints on attributes absent from a marginal are ignored.
        let ab = d.marginal(&AttrSet::from_ids([0, 1])).unwrap();
        assert_eq!(ab.range_mass(&[(2, 0, 0)]), 64.0);
    }

    #[test]
    fn values_along_sorted() {
        let rel = diagonal_relation();
        let d = rel.distribution();
        let vals = d.values_along(0);
        assert_eq!(vals.len(), 4);
        assert!(vals.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(vals.iter().all(|&(_, f)| (f - 16.0).abs() < 1e-12));
    }

    #[test]
    fn scale_rescales_total() {
        let rel = diagonal_relation();
        let mut d = rel.distribution();
        d.scale(0.5);
        assert_eq!(d.total(), 32.0);
        assert_eq!(d.frequency(&[1, 1, 0]), 4.0);
    }

    #[test]
    fn add_accumulates() {
        let schema = Schema::new(vec![("x", 4)]).unwrap();
        let mut d = Distribution::empty(schema, AttrSet::singleton(0)).unwrap();
        d.add(&[1], 2.0);
        d.add(&[1], 3.0);
        d.add(&[2], 1.0);
        assert_eq!(d.frequency(&[1]), 5.0);
        assert_eq!(d.total(), 6.0);
        assert_eq!(d.support_size(), 2);
    }
}
