//! Materialized relations of integer-coded rows.
//!
//! A [`Relation`] is the paper's input table `R`: `N` tuples over `n`
//! attributes whose values are integer-coded into `0..|D_j|`. It is stored
//! column-major-free — a flat row-major `Vec<u32>` — which keeps row access
//! cache-friendly for ground-truth query evaluation and distribution
//! construction.

use crate::attr::{AttrId, AttrSet, Schema};
use crate::distribution::Distribution;
use crate::error::DistributionError;

/// A materialized table of integer-coded tuples.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Schema,
    /// Row-major values; length is `row_count * schema.arity()`.
    values: Vec<u32>,
}

impl Relation {
    /// Builds a relation from explicit rows, validating arity and domains.
    ///
    /// # Errors
    ///
    /// * [`DistributionError::ArityMismatch`] if a row's length differs from
    ///   the schema arity.
    /// * [`DistributionError::ValueOutOfDomain`] if a value exceeds its
    ///   attribute's domain.
    pub fn from_rows(
        schema: Schema,
        rows: impl IntoIterator<Item = Vec<u32>>,
    ) -> Result<Self, DistributionError> {
        let arity = schema.arity();
        let mut values = Vec::new();
        for row in rows {
            if row.len() != arity {
                return Err(DistributionError::ArityMismatch {
                    expected: arity,
                    actual: row.len(),
                });
            }
            for (j, &v) in row.iter().enumerate() {
                let d = schema.domain_size(j as AttrId);
                if v >= d {
                    return Err(DistributionError::ValueOutOfDomain {
                        attr: j as AttrId,
                        value: v,
                        domain_size: d,
                    });
                }
            }
            values.extend_from_slice(&row);
        }
        Ok(Self { schema, values })
    }

    /// The relation's schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples `N`.
    #[must_use]
    pub fn row_count(&self) -> usize {
        if self.schema.arity() == 0 {
            0
        } else {
            self.values.len() / self.schema.arity()
        }
    }

    /// The `i`-th tuple as a value slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= row_count()`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[u32] {
        let n = self.schema.arity();
        &self.values[i * n..(i + 1) * n]
    }

    /// Iterates over all tuples.
    pub fn rows(&self) -> impl Iterator<Item = &[u32]> {
        self.values.chunks_exact(self.schema.arity())
    }

    /// Builds the joint frequency distribution over all attributes
    /// (paper §2.1: the `n`-dimensional contingency table of `R`).
    #[must_use]
    pub fn distribution(&self) -> Distribution {
        #[allow(clippy::expect_used)]
        Distribution::from_relation(self, &self.schema.all_attrs())
            .expect("all_attrs is a valid subset") // lint:allow(panic-surface): all_attrs ⊆ schema attrs by construction
    }

    /// Builds the marginal frequency distribution over `attrs` directly
    /// from the rows (cheaper than projecting the full joint when only a
    /// few marginals are needed).
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError::UnknownAttr`] if `attrs` mentions an
    /// attribute not in the schema.
    pub fn marginal(&self, attrs: &AttrSet) -> Result<Distribution, DistributionError> {
        Distribution::from_relation(self, attrs)
    }

    /// Counts the tuples matching a conjunction of per-attribute inclusive
    /// ranges `(attr, lo, hi)` — the exact answer to a range-selectivity
    /// query, used as ground truth in the evaluation.
    #[must_use]
    pub fn count_range(&self, ranges: &[(AttrId, u32, u32)]) -> u64 {
        self.rows()
            .filter(|row| {
                ranges.iter().all(|&(a, lo, hi)| {
                    let v = row[usize::from(a)];
                    v >= lo && v <= hi
                })
            })
            .count() as u64
    }

    /// Draws a uniform random sample of `k` rows (without replacement when
    /// `k <= N`, via partial Fisher–Yates over row indices) and returns it
    /// as a new relation. `seed` makes the draw reproducible.
    #[must_use]
    pub fn sample(&self, k: usize, seed: u64) -> Relation {
        let n = self.row_count();
        let k = k.min(n);
        // Partial Fisher–Yates with an xorshift generator; good enough for
        // reservoir-style sampling and keeps `rand` out of this crate.
        let mut indices: Vec<usize> = (0..n).collect();
        // Splitmix-style scramble so nearby seeds diverge, then xorshift.
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        state = (state ^ (state >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        state = (state ^ (state >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        state = (state ^ (state >> 31)) | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..k {
            let j = i + (next() as usize) % (n - i);
            indices.swap(i, j);
        }
        let arity = self.schema.arity();
        let mut values = Vec::with_capacity(k * arity);
        for &idx in &indices[..k] {
            values.extend_from_slice(self.row(idx));
        }
        Relation { schema: self.schema.clone(), values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema3() -> Schema {
        Schema::new(vec![("a", 4), ("b", 3), ("c", 5)]).unwrap()
    }

    #[test]
    fn from_rows_validates() {
        let s = schema3();
        assert!(Relation::from_rows(s.clone(), vec![vec![0, 1]]).is_err());
        assert!(Relation::from_rows(s.clone(), vec![vec![0, 1, 9]]).is_err());
        let r = Relation::from_rows(s, vec![vec![0, 1, 2], vec![3, 2, 4]]).unwrap();
        assert_eq!(r.row_count(), 2);
        assert_eq!(r.row(1), &[3, 2, 4]);
    }

    #[test]
    fn count_range_ground_truth() {
        let s = schema3();
        let rows = vec![vec![0, 0, 0], vec![1, 1, 1], vec![2, 2, 2], vec![3, 2, 4], vec![1, 0, 3]];
        let r = Relation::from_rows(s, rows).unwrap();
        assert_eq!(r.count_range(&[]), 5);
        assert_eq!(r.count_range(&[(0, 1, 2)]), 3);
        assert_eq!(r.count_range(&[(0, 1, 2), (1, 1, 2)]), 2);
        assert_eq!(r.count_range(&[(2, 4, 4)]), 1);
        assert_eq!(r.count_range(&[(0, 0, 3), (1, 0, 2), (2, 0, 4)]), 5);
    }

    #[test]
    fn sample_sizes_and_validity() {
        let s = schema3();
        let rows: Vec<Vec<u32>> = (0..100).map(|i| vec![i % 4, i % 3, i % 5]).collect();
        let r = Relation::from_rows(s, rows).unwrap();
        let sm = r.sample(10, 42);
        assert_eq!(sm.row_count(), 10);
        // Oversampling clamps to N.
        assert_eq!(r.sample(1000, 42).row_count(), 100);
        // Deterministic under the same seed.
        let sm2 = r.sample(10, 42);
        assert_eq!(sm.rows().collect::<Vec<_>>(), sm2.rows().collect::<Vec<_>>());
        // Different seed gives a different draw (overwhelmingly likely).
        let sm3 = r.sample(10, 43);
        assert_ne!(sm.rows().collect::<Vec<_>>(), sm3.rows().collect::<Vec<_>>());
    }

    #[test]
    fn sample_without_replacement() {
        let s = Schema::new(vec![("id", 100)]).unwrap();
        let rows: Vec<Vec<u32>> = (0..100).map(|i| vec![i]).collect();
        let r = Relation::from_rows(s, rows).unwrap();
        let sm = r.sample(50, 7);
        let mut seen: Vec<u32> = sm.rows().map(|r| r[0]).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 50, "sampled rows must be distinct");
    }
}
