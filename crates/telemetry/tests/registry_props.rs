//! Property-based coverage for the lock-free metrics registry: exact
//! concurrent counting, monotone latency-histogram bucketing with bounded
//! relative error, and snapshot safety under concurrent writes.

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests assert by panicking

use std::sync::Arc;

use dbhist_telemetry::{LatencyHistogram, Registry};
use proptest::prelude::*;

proptest! {
    /// Increments from any number of racing threads are never lost: the
    /// final counter value is exactly the sum of all per-thread counts.
    #[test]
    fn concurrent_increments_sum_exactly(
        per_thread in proptest::collection::vec(1u64..500, 2..8),
        bulk in 0u64..1000,
    ) {
        let registry = Registry::default();
        let counter = registry.counter("dbhist_test_props_increments_total");
        std::thread::scope(|scope| {
            for &n in &per_thread {
                let c = Arc::clone(&counter);
                scope.spawn(move || {
                    for _ in 0..n {
                        c.increment();
                    }
                });
            }
        });
        counter.add(bulk);
        let expected: u64 = per_thread.iter().sum::<u64>() + bulk;
        prop_assert_eq!(counter.value(), expected);
    }

    /// For any grouping power and any workload, the snapshot's bucket
    /// bounds are strictly increasing and disjoint, every bucket holds
    /// the full recorded count, and each recorded value's bucket bound
    /// implies relative quantization error at most `2^-grouping_power`.
    #[test]
    fn bucket_bounds_monotone_and_error_bounded(
        power in 1u32..=8,
        values in proptest::collection::vec(0u64..=u64::from(u32::MAX), 1..200),
    ) {
        let hist = LatencyHistogram::new(power);
        for &v in &values {
            hist.record(v);
        }
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        let buckets = snap.histogram.buckets();
        let mut total = 0u64;
        for pair in buckets.windows(2) {
            prop_assert!(
                pair[1].lo > pair[0].hi,
                "buckets must be disjoint and ascending: {:?} then {:?}",
                pair[0],
                pair[1]
            );
        }
        for b in buckets {
            prop_assert!(b.lo <= b.hi, "inverted bucket {:?}", b);
            // Sub-bucket width implies the metriken error bound: the true
            // value and the bucket bound differ by at most the width,
            // which is `lo >> power` in the power-of-two regions.
            let width = u64::from(b.hi) - u64::from(b.lo);
            prop_assert!(
                width <= (u64::from(b.lo) >> power) + (1 << power),
                "bucket {:?} wider than the 2^-{} error bound allows",
                b,
                power
            );
            total += b.freq as u64;
        }
        prop_assert_eq!(total, values.len() as u64);
        // Every recorded value is covered by some bucket (saturated at
        // the u32 cap, matching `record`).
        for &v in &values {
            let capped = v.min(u64::from(u32::MAX));
            prop_assert!(
                buckets.iter().any(|b| u64::from(b.lo) <= capped && capped <= u64::from(b.hi)),
                "value {} not covered by any bucket",
                v
            );
        }
    }

    /// Snapshots taken while writers are recording never panic, and the
    /// counter totals they observe are monotone non-decreasing.
    #[test]
    fn snapshot_under_write_never_panics(
        writers in 1usize..4,
        rounds in 1usize..30,
    ) {
        let registry = Registry::default();
        let counter = registry.counter("dbhist_test_props_snapshot_total");
        let hist = registry.histogram("dbhist_test_props_snapshot_latency_ns");
        std::thread::scope(|scope| {
            for w in 0..writers {
                let c = Arc::clone(&counter);
                let h = Arc::clone(&hist);
                scope.spawn(move || {
                    for i in 0..200u64 {
                        c.increment();
                        h.record(i * (w as u64 + 1));
                    }
                });
            }
            let mut last = 0u64;
            for _ in 0..rounds {
                let snap = registry.snapshot();
                let seen = snap.counter("dbhist_test_props_snapshot_total").unwrap_or(0);
                assert!(seen >= last, "counter snapshot went backwards: {last} -> {seen}");
                last = seen;
                let _ = snap.histogram("dbhist_test_props_snapshot_latency_ns");
            }
        });
        prop_assert_eq!(counter.value(), 200 * writers as u64);
        prop_assert_eq!(hist.snapshot().count, 200 * writers as u64);
    }
}
