//! Lock-free metric primitives and the process-wide registry.
//!
//! Recording a metric is wait-free: counters and gauges are single
//! `AtomicU64` cells, and [`LatencyHistogram`] is a fixed array of atomic
//! buckets indexed by a pure function of the recorded value — no CAS
//! loops, no locks, `Relaxed` ordering throughout. The registry's mutex
//! guards only registration (name → handle lookup) and snapshotting;
//! callers keep `Arc` handles and never touch the map on hot paths.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use dbhist_histogram::one_dim::Bucket1;
use dbhist_histogram::OneDimHistogram;

/// A monotonically increasing counter (`*_total` metrics).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn increment(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero. Intended for tests and benchmark harnesses;
    /// production counters are cumulative by convention.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A gauge holding an arbitrary `f64` (stored as its bit pattern in an
/// `AtomicU64`, so reads and writes stay lock-free).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge. A default-initialized gauge reads `0.0`.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.set(0.0);
    }
}

/// Default grouping power `b` for registry-created histograms: values are
/// exact below `2^5 = 32` and bucketed with at most `2^-5 ≈ 3%` relative
/// error above.
pub const DEFAULT_GROUPING_POWER: u32 = 5;

/// Histograms cover `[0, 2^MAX_VALUE_POWER)`; recorded values saturate at
/// the top. `u32::MAX` nanoseconds ≈ 4.3 s, ample for per-query latencies
/// (longer build phases record microseconds).
const MAX_VALUE_POWER: u32 = 32;

/// A wait-free latency histogram in the metriken/rustcommon style.
///
/// Values below `2^b` (the *grouping power*) land in exact unit-width
/// buckets; each power-of-two region `[2^h, 2^{h+1})` above is divided
/// into `2^b` equal sub-buckets, bounding the relative quantization error
/// by `2^-b` while keeping the bucket count logarithmic in the value
/// range. Recording is one `fetch_add` on the indexed bucket plus two for
/// the running count/sum — no locks, no allocation.
///
/// Snapshots materialize the non-empty buckets as the repo's own
/// [`OneDimHistogram`], so percentile queries reuse the same
/// intra-bucket-uniformity estimator the synopsis engine itself is built
/// on.
#[derive(Debug)]
pub struct LatencyHistogram {
    grouping_power: u32,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new(DEFAULT_GROUPING_POWER)
    }
}

impl LatencyHistogram {
    /// Creates a histogram with grouping power `b` (clamped to
    /// `[1, 31]`): relative quantization error at most `2^-b`, bucket
    /// count `(32 - b + 1) * 2^b`.
    #[must_use]
    pub fn new(grouping_power: u32) -> Self {
        let b = grouping_power.clamp(1, MAX_VALUE_POWER - 1);
        let blocks = u64::from(MAX_VALUE_POWER - b + 1);
        let len = usize::try_from(blocks << b).unwrap_or(usize::MAX);
        let mut buckets = Vec::with_capacity(len);
        buckets.resize_with(len, AtomicU64::default);
        Self {
            grouping_power: b,
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// The grouping power `b` this histogram was created with.
    #[must_use]
    pub fn grouping_power(&self) -> u32 {
        self.grouping_power
    }

    /// Records one observation (saturating at `u32::MAX`). Wait-free.
    pub fn record(&self, value: u64) {
        let idx = self.index_of(value);
        if let Some(slot) = self.buckets.get(idx) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (wrapping on overflow).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Bucket index for `value`.
    fn index_of(&self, value: u64) -> usize {
        let v = value.min(u64::from(u32::MAX));
        let b = self.grouping_power;
        if v < (1u64 << b) {
            usize::try_from(v).unwrap_or(usize::MAX)
        } else {
            // v >= 2^b >= 2, so h = floor(log2 v) >= b >= 1.
            let h = 63 - v.leading_zeros();
            let block = u64::from(h - b + 1);
            let offset = (v - (1u64 << h)) >> (h - b);
            usize::try_from((block << b) + offset).unwrap_or(usize::MAX)
        }
    }

    /// Inclusive `[lo, hi]` value bounds of bucket `index`.
    fn bounds_of(&self, index: usize) -> (u32, u32) {
        let b = self.grouping_power;
        let i = index as u64;
        if i < (1u64 << b) {
            let v = u32::try_from(i).unwrap_or(u32::MAX);
            (v, v)
        } else {
            let block = u32::try_from(i >> b).unwrap_or(u32::MAX);
            let offset = i & ((1u64 << b) - 1);
            let h = block + b - 1;
            let width = 1u64 << (h - b);
            let lo = (1u64 << h) + offset * width;
            let hi = lo + width - 1;
            (
                u32::try_from(lo).unwrap_or(u32::MAX),
                u32::try_from(hi.min(u64::from(u32::MAX))).unwrap_or(u32::MAX),
            )
        }
    }

    /// A consistent-enough point-in-time view. Buckets are read with
    /// `Relaxed` loads while writers may be recording concurrently, so
    /// the snapshot can lag individual writers, but it never panics, and
    /// the materialized buckets are always sorted and disjoint.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut out: Vec<Bucket1> = Vec::new();
        for (i, slot) in self.buckets.iter().enumerate() {
            let n = slot.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            let (lo, hi) = self.bounds_of(i);
            out.push(Bucket1 { lo, hi, freq: n as f64 });
        }
        // Bucket bounds are monotone in the index, so assembly cannot
        // fail; the empty histogram is the safe degenerate fallback.
        let histogram = OneDimHistogram::from_buckets(0, out).unwrap_or_default();
        HistogramSnapshot { count: self.count(), sum: self.sum(), histogram }
    }

    /// Adds every observation of `other` into `self`. With matching
    /// grouping powers (the only case the engine produces) the merge is
    /// exact bucket-wise addition; under a mismatch each foreign bucket
    /// is re-recorded at its lower bound, preserving counts but not
    /// sub-bucket placement.
    pub fn absorb(&self, other: &Self) {
        if self.grouping_power == other.grouping_power {
            for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
                let n = src.load(Ordering::Relaxed);
                if n > 0 {
                    dst.fetch_add(n, Ordering::Relaxed);
                }
            }
        } else {
            for (i, src) in other.buckets.iter().enumerate() {
                let n = src.load(Ordering::Relaxed);
                if n == 0 {
                    continue;
                }
                let (lo, _) = other.bounds_of(i);
                if let Some(dst) = self.buckets.get(self.index_of(u64::from(lo))) {
                    dst.fetch_add(n, Ordering::Relaxed);
                }
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
    }

    /// Zeroes every bucket and the running count/sum.
    pub fn reset(&self) {
        for slot in &*self.buckets {
            slot.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time view of a [`LatencyHistogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of recorded values (wrapping).
    pub sum: u64,
    /// Non-empty buckets, materialized as the repo's own one-dimensional
    /// histogram type.
    pub histogram: OneDimHistogram,
}

impl HistogramSnapshot {
    /// The `q`-th percentile (`0..=100`) of recorded values under
    /// intra-bucket uniformity; `None` when empty.
    #[must_use]
    pub fn percentile(&self, q: f64) -> Option<f64> {
        self.histogram.percentile(q)
    }

    /// Mean recorded value; `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

/// A live metric handle, as stored in the registry.
#[derive(Debug, Clone)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<LatencyHistogram>),
}

/// The value of one metric in a [`Snapshot`].
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Histogram reading.
    Histogram(HistogramSnapshot),
}

/// One named metric in a [`Snapshot`].
#[derive(Debug, Clone)]
pub struct MetricSnapshot {
    /// Full metric name, including any `{label="value"}` suffix.
    pub name: String,
    /// Reading at snapshot time.
    pub value: MetricValue,
}

/// A point-in-time view of every registered metric, name-sorted.
/// Produced by [`Registry::snapshot`]; rendered by [`crate::export`].
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// All metrics, sorted by name.
    pub metrics: Vec<MetricSnapshot>,
}

impl Snapshot {
    /// The reading for `name`, if registered.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.iter().find(|m| m.name == name).map(|m| &m.value)
    }

    /// Counter reading for `name`.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(&MetricValue::Counter(v)) => Some(v),
            _ => None,
        }
    }

    /// Gauge reading for `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name) {
            Some(&MetricValue::Gauge(v)) => Some(v),
            _ => None,
        }
    }

    /// Histogram reading for `name`.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }
}

/// Name → metric map. Registration and snapshotting lock the map;
/// recording through the returned `Arc` handles never does.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Handle>>,
}

impl Registry {
    /// A poisoned registry lock only means another thread panicked while
    /// holding it; the map itself is always consistent.
    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Handle>> {
        self.metrics.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use. Re-registering a name under a different metric kind replaces
    /// the old handle (the naming lint keeps kinds unambiguous in
    /// practice).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.lock();
        if let Some(Handle::Counter(c)) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        map.insert(name.to_string(), Handle::Counter(Arc::clone(&c)));
        c
    }

    /// Returns the gauge registered under `name`, creating it on first
    /// use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.lock();
        if let Some(Handle::Gauge(g)) = map.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::default());
        map.insert(name.to_string(), Handle::Gauge(Arc::clone(&g)));
        g
    }

    /// Returns the latency histogram registered under `name`, creating it
    /// (with [`DEFAULT_GROUPING_POWER`]) on first use.
    pub fn histogram(&self, name: &str) -> Arc<LatencyHistogram> {
        let mut map = self.lock();
        if let Some(Handle::Histogram(h)) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(LatencyHistogram::default());
        map.insert(name.to_string(), Handle::Histogram(Arc::clone(&h)));
        h
    }

    /// Reads every registered metric. Concurrent writers may land between
    /// individual reads (the snapshot is not a global atomic cut), but
    /// snapshotting never blocks recording and never panics.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let map = self.lock();
        let metrics = map
            .iter()
            .map(|(name, handle)| MetricSnapshot {
                name: name.clone(),
                value: match handle {
                    Handle::Counter(c) => MetricValue::Counter(c.value()),
                    Handle::Gauge(g) => MetricValue::Gauge(g.value()),
                    Handle::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        Snapshot { metrics }
    }

    /// Zeroes every registered metric (handles stay valid). For tests and
    /// benchmark harnesses that need a clean baseline.
    pub fn reset(&self) {
        let map = self.lock();
        for handle in map.values() {
            match handle {
                Handle::Counter(c) => c.reset(),
                Handle::Gauge(g) => g.reset(),
                Handle::Histogram(h) => h.reset(),
            }
        }
    }

    /// Number of registered metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when nothing has been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

/// Master switch for *global* telemetry: span guards and the engine's
/// global metric mirroring are inert unless enabled. Local accounting
/// (per-engine `QueryTrace`, `BuildTrace`, drift gauges) works
/// regardless, so estimator behaviour is bit-identical either way.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns global telemetry recording on or off (process-wide).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// `true` when global telemetry recording is on.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry every `dbhist_*` metric registers into.
#[must_use]
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::default)
}

/// Snapshot of the process-wide registry.
#[must_use]
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::default();
        let c = r.counter("dbhist_test_counter_total");
        c.increment();
        c.add(41);
        assert_eq!(c.value(), 42);
        let g = r.gauge("dbhist_test_gauge_ratio");
        assert!(g.value().abs() < f64::EPSILON);
        g.set(0.5);
        let snap = r.snapshot();
        assert_eq!(snap.counter("dbhist_test_counter_total"), Some(42));
        assert!((snap.gauge("dbhist_test_gauge_ratio").unwrap_or(0.0) - 0.5).abs() < 1e-12);
        r.reset();
        assert_eq!(r.snapshot().counter("dbhist_test_counter_total"), Some(0));
    }

    #[test]
    fn registration_is_idempotent() {
        let r = Registry::default();
        let a = r.counter("dbhist_test_idem_total");
        let b = r.counter("dbhist_test_idem_total");
        a.increment();
        b.increment();
        assert_eq!(a.value(), 2);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn histogram_exact_below_grouping_power() {
        let h = LatencyHistogram::new(5);
        for v in 0..32u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 32);
        assert_eq!(snap.sum, (0..32u64).sum::<u64>());
        assert_eq!(snap.histogram.bucket_count(), 32);
        for b in snap.histogram.buckets() {
            assert_eq!(b.lo, b.hi, "unit-width below 2^b");
        }
    }

    #[test]
    fn histogram_relative_error_bounded() {
        let h = LatencyHistogram::new(5);
        for v in [100u64, 1_000, 10_000, 1_000_000, 4_000_000_000] {
            h.record(v);
            let idx = h.index_of(v);
            let (lo, hi) = h.bounds_of(idx);
            assert!(u64::from(lo) <= v && v <= u64::from(hi), "{v} not in [{lo}, {hi}]");
            let width = u64::from(hi) - u64::from(lo) + 1;
            assert!((width as f64) <= (v as f64) / 16.0, "width {width} too wide for {v}");
        }
    }

    #[test]
    fn histogram_saturates_at_u32_max() {
        let h = LatencyHistogram::new(5);
        h.record(u64::MAX);
        h.record(u64::from(u32::MAX));
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.histogram.bucket_count(), 1, "both land in the top bucket");
    }

    #[test]
    fn bucket_bounds_are_monotone_and_tile() {
        for power in [1u32, 2, 5, 7] {
            let h = LatencyHistogram::new(power);
            let mut prev_hi: Option<u32> = None;
            for i in 0..h.buckets.len() {
                let (lo, hi) = h.bounds_of(i);
                assert!(lo <= hi, "inverted bucket {i} at power {power}");
                if let Some(p) = prev_hi {
                    assert_eq!(lo, p.wrapping_add(1), "gap before bucket {i} at power {power}");
                }
                prev_hi = Some(hi);
            }
            assert_eq!(prev_hi, Some(u32::MAX), "buckets must cover the full range");
        }
    }

    #[test]
    fn index_and_bounds_agree_on_boundaries() {
        let h = LatencyHistogram::new(5);
        for v in [0u64, 1, 31, 32, 33, 63, 64, 1023, 1024, 1 << 20, (1 << 31) + 7] {
            let (lo, hi) = h.bounds_of(h.index_of(v));
            assert!(u64::from(lo) <= v && v <= u64::from(hi), "{v} not in [{lo}, {hi}]");
        }
    }

    #[test]
    fn percentiles_from_snapshot() {
        let h = LatencyHistogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        let p50 = snap.percentile(50.0).unwrap_or(0.0);
        let p99 = snap.percentile(99.0).unwrap_or(0.0);
        assert!((400.0..=640.0).contains(&p50), "p50 {p50}");
        assert!((900.0..=1030.0).contains(&p99), "p99 {p99}");
        assert!(p50 < p99);
        assert!((snap.mean().unwrap_or(0.0) - 500.5).abs() < 1.0);
    }

    #[test]
    fn absorb_merges_bucketwise() {
        let a = LatencyHistogram::new(5);
        let b = LatencyHistogram::new(5);
        for v in [3u64, 100, 5_000] {
            a.record(v);
            b.record(v);
            b.record(v + 1);
        }
        a.absorb(&b);
        assert_eq!(a.count(), 9);
        assert_eq!(a.sum(), 3 * (3 + 100 + 5_000) + 3);
        let total: f64 = a.snapshot().histogram.buckets().iter().map(|bk| bk.freq).sum();
        assert!((total - 9.0).abs() < 1e-9, "every bucket observation survives the merge");
    }

    #[test]
    fn concurrent_increments_sum_exactly() {
        let r = Registry::default();
        let c = r.counter("dbhist_test_threads_total");
        let h = r.histogram("dbhist_test_threads_latency_ns");
        std::thread::scope(|scope| {
            for t in 0..8 {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        c.increment();
                        h.record(t * 1000 + i % 97);
                    }
                });
            }
        });
        assert_eq!(c.value(), 80_000);
        assert_eq!(h.count(), 80_000);
        let total: f64 = h.snapshot().histogram.buckets().iter().map(|b| b.freq).sum();
        assert!((total - 80_000.0).abs() < 1e-9, "no recorded value may be lost");
    }

    #[test]
    fn snapshot_under_write_never_panics() {
        let r = Registry::default();
        let h = r.histogram("dbhist_test_torn_latency_ns");
        std::thread::scope(|scope| {
            let writer = Arc::clone(&h);
            scope.spawn(move || {
                for i in 0..50_000u64 {
                    writer.record(i.wrapping_mul(0x9E37_79B9));
                }
            });
            for _ in 0..50 {
                let snap = r.snapshot();
                if let Some(hist) = snap.histogram("dbhist_test_torn_latency_ns") {
                    let _ = hist.percentile(50.0);
                    let _ = hist.percentile(99.0);
                }
            }
        });
    }

    #[test]
    fn enabled_flag_toggles() {
        let _serial = crate::test_support::enabled_flag_lock();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }
}
