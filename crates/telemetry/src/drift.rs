//! Accuracy-drift monitoring from observed query cardinalities.
//!
//! A synopsis is built from a snapshot of the data; as the underlying
//! table changes (or the build sample ages), its estimates *drift* from
//! the truth. When the serving layer learns a query's actual cardinality
//! (e.g. after executing it), it feeds
//! `SelectivityEstimator::record_feedback` — which lands here as one
//! absolute-relative-error observation attributed to the model cliques
//! the query touched.
//!
//! [`DriftMonitor`] keeps a rolling window of recent errors per clique
//! and publishes the window mean as a per-clique gauge
//! (`dbhist_estimator_drift_ratio{clique="i"}`). Maintenance policies
//! compare [`DriftMonitor::max_drift`] against a threshold to decide
//! rebuilds — a *measured* trigger that complements churn-fraction
//! heuristics.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::registry::{self, Counter, Gauge};

/// Default rolling-window length per clique.
pub const DEFAULT_WINDOW: usize = 64;

#[derive(Debug)]
struct CliqueDrift {
    /// Recent absolute relative errors, oldest first.
    errors: Mutex<VecDeque<f64>>,
    /// This monitor's window mean (always maintained).
    mean: Gauge,
    /// Registry gauge `dbhist_estimator_drift_ratio{clique="i"}`,
    /// mirrored from `mean` while global telemetry is enabled.
    published: Arc<Gauge>,
}

fn lock(errors: &Mutex<VecDeque<f64>>) -> MutexGuard<'_, VecDeque<f64>> {
    // A poisoned window only means another thread panicked mid-push; the
    // deque is always structurally sound.
    errors.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Rolling absolute-relative-error statistics per model clique.
///
/// The per-clique gauges live in the global registry keyed by clique
/// *index*, so when several synopses coexist in one process the gauges
/// reflect the most recently fed monitor; per-synopsis readings are
/// always available through [`DriftMonitor::drift`] on the owning
/// estimator.
#[derive(Debug)]
pub struct DriftMonitor {
    window: usize,
    cliques: Vec<CliqueDrift>,
    observed: Counter,
}

impl DriftMonitor {
    /// Creates a monitor for `n_cliques` cliques with the given rolling
    /// window length (clamped to at least 1).
    #[must_use]
    pub fn new(n_cliques: usize, window: usize) -> Self {
        let window = window.max(1);
        let cliques = (0..n_cliques)
            .map(|i| CliqueDrift {
                errors: Mutex::new(VecDeque::with_capacity(window)),
                mean: Gauge::default(),
                published: registry::global()
                    .gauge(&format!("dbhist_estimator_drift_ratio{{clique=\"{i}\"}}")),
            })
            .collect();
        Self { window, cliques, observed: Counter::default() }
    }

    /// Records one feedback observation for `clique` (out-of-range clique
    /// indices are ignored). `abs_rel_error` is `|estimate − actual| /
    /// actual`; negative inputs are folded to their absolute value.
    pub fn record(&self, clique: usize, abs_rel_error: f64) {
        let Some(c) = self.cliques.get(clique) else { return };
        if !abs_rel_error.is_finite() {
            return;
        }
        let mean = {
            let mut errors = lock(&c.errors);
            if errors.len() == self.window {
                errors.pop_front();
            }
            errors.push_back(abs_rel_error.abs());
            errors.iter().sum::<f64>() / errors.len() as f64
        };
        c.mean.set(mean);
        if registry::enabled() {
            c.published.set(mean);
        }
        self.observed.increment();
    }

    /// Rolling mean absolute relative error for `clique` (0.0 before any
    /// feedback, or for an out-of-range index).
    #[must_use]
    pub fn drift(&self, clique: usize) -> f64 {
        self.cliques.get(clique).map_or(0.0, |c| c.mean.value())
    }

    /// The worst per-clique drift — the value maintenance policies
    /// threshold on.
    #[must_use]
    pub fn max_drift(&self) -> f64 {
        self.cliques.iter().map(|c| c.mean.value()).fold(0.0, f64::max)
    }

    /// Total feedback observations recorded into this monitor.
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.observed.value()
    }

    /// Number of cliques tracked.
    #[must_use]
    pub fn n_cliques(&self) -> usize {
        self.cliques.len()
    }

    /// Rolling window length.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Clears every window and zeroes the gauges (e.g. right after a
    /// rebuild, when accumulated drift no longer describes the new
    /// synopsis).
    pub fn reset(&self) {
        for c in &self.cliques {
            lock(&c.errors).clear();
            c.mean.set(0.0);
            if registry::enabled() {
                c.published.set(0.0);
            }
        }
        self.observed.reset();
    }
}

impl Clone for DriftMonitor {
    /// Clones the windows and local means; the registry-published gauges
    /// are shared (they are keyed by clique index in the global
    /// registry).
    fn clone(&self) -> Self {
        Self {
            window: self.window,
            cliques: self
                .cliques
                .iter()
                .map(|c| {
                    let mean = Gauge::default();
                    mean.set(c.mean.value());
                    CliqueDrift {
                        errors: Mutex::new(lock(&c.errors).clone()),
                        mean,
                        published: Arc::clone(&c.published),
                    }
                })
                .collect(),
            observed: {
                let observed = Counter::default();
                observed.add(self.observed.value());
                observed
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_mean_tracks_window() {
        let m = DriftMonitor::new(2, 4);
        for _ in 0..4 {
            m.record(0, 1.0);
        }
        assert!((m.drift(0) - 1.0).abs() < 1e-12);
        // Four more small errors push the large ones out of the window.
        for _ in 0..4 {
            m.record(0, 0.1);
        }
        assert!((m.drift(0) - 0.1).abs() < 1e-12);
        assert!(m.drift(1).abs() < 1e-12, "untouched clique stays at zero");
        assert_eq!(m.observations(), 8);
        assert!((m.max_drift() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn ignores_garbage() {
        let m = DriftMonitor::new(1, 8);
        m.record(5, 1.0); // out of range
        m.record(0, f64::NAN);
        m.record(0, f64::INFINITY);
        assert_eq!(m.observations(), 0);
        m.record(0, -0.5); // folded to |.|
        assert!((m.drift(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_everything() {
        let m = DriftMonitor::new(1, 8);
        m.record(0, 2.0);
        assert!(m.max_drift() > 1.0);
        m.reset();
        assert!(m.max_drift().abs() < 1e-12);
        assert_eq!(m.observations(), 0);
    }

    #[test]
    fn clone_shares_gauges_but_not_windows() {
        let m = DriftMonitor::new(1, 4);
        m.record(0, 1.0);
        let c = m.clone();
        assert!((c.drift(0) - 1.0).abs() < 1e-12);
        c.record(0, 0.0);
        // The clone's window diverges; the original's local mean is
        // untouched.
        assert!((c.drift(0) - 0.5).abs() < 1e-12);
        assert!((m.drift(0) - 1.0).abs() < 1e-12);
        assert_eq!(m.observations(), 1, "original's observation count unchanged");
    }
}
