//! Accuracy-drift monitoring from observed query cardinalities.
//!
//! A synopsis is built from a snapshot of the data; as the underlying
//! table changes (or the build sample ages), its estimates *drift* from
//! the truth. When the serving layer learns a query's actual cardinality
//! (e.g. after executing it), it feeds
//! `SelectivityEstimator::record_feedback` — which lands here as one
//! absolute-relative-error observation attributed to the model cliques
//! the query touched.
//!
//! [`DriftMonitor`] keeps, per clique, both a rolling window of recent
//! errors (published as the mean gauge
//! `dbhist_estimator_drift_ratio{clique="i"}`) and a full abs-rel-error
//! *distribution* reusing [`LatencyHistogram`] bucketing over a
//! fixed-point encoding ([`ERROR_SCALE`] ten-thousandths). The
//! distribution is exported as per-clique quantile gauges
//! (`dbhist_estimator_error_q50_ratio{clique="i"}`, likewise `q95`/`q99`)
//! so a scrape shows the error *shape*, not just its recent mean.
//! Maintenance policies compare [`DriftMonitor::max_drift`] (and tail
//! quantiles via [`DriftMonitor::error_quantile`]) against thresholds to
//! decide rebuilds — a *measured* trigger that complements
//! churn-fraction heuristics.
//!
//! Non-finite feedback (`NaN`/`±inf`, e.g. from a zero actual
//! cardinality) is **dropped, not recorded**: it would poison every
//! window mean. Drops are counted in [`DriftMonitor::dropped`] and
//! mirrored to `dbhist_estimator_feedback_dropped_total` while global
//! telemetry is enabled, so silent estimator/feedback mismatches surface
//! in scrapes.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::registry::{self, Counter, Gauge, HistogramSnapshot, LatencyHistogram};
use crate::wellknown::wellknown;

/// Default rolling-window length per clique.
pub const DEFAULT_WINDOW: usize = 64;

/// Fixed-point scale for error distributions: an absolute relative error
/// `e` is recorded as `round(e * ERROR_SCALE)` (ten-thousandths, i.e.
/// 0.01% resolution), saturating at the histogram's `u32::MAX` ceiling
/// (errors above ~429496x land in the top bucket).
pub const ERROR_SCALE: f64 = 10_000.0;

/// Quantiles published as per-clique gauges while telemetry is enabled:
/// the full gauge family name paired with the percentile it reports.
const PUBLISHED_QUANTILES: [(&str, f64); 3] = [
    ("dbhist_estimator_error_q50_ratio", 50.0),
    ("dbhist_estimator_error_q95_ratio", 95.0),
    ("dbhist_estimator_error_q99_ratio", 99.0),
];

fn scale_error(abs_error: f64) -> u64 {
    // In-range f64→u64: the clamp bounds the value before the cast.
    (abs_error * ERROR_SCALE).round().clamp(0.0, f64::from(u32::MAX)) as u64
}

#[derive(Debug)]
struct CliqueDrift {
    /// Recent absolute relative errors, oldest first.
    errors: Mutex<VecDeque<f64>>,
    /// This monitor's window mean (always maintained).
    mean: Gauge,
    /// Full abs-rel-error distribution, fixed-point encoded (always
    /// maintained; cumulative, unlike the rolling window).
    distribution: LatencyHistogram,
    /// Registry gauge `dbhist_estimator_drift_ratio{clique="i"}`,
    /// mirrored from `mean` while global telemetry is enabled.
    published: Arc<Gauge>,
    /// Registry gauges `dbhist_estimator_error_q{50,95,99}_ratio{...}`,
    /// refreshed from `distribution` while global telemetry is enabled.
    published_quantiles: Vec<Arc<Gauge>>,
}

fn lock(errors: &Mutex<VecDeque<f64>>) -> MutexGuard<'_, VecDeque<f64>> {
    // A poisoned window only means another thread panicked mid-push; the
    // deque is always structurally sound.
    errors.lock().unwrap_or_else(PoisonError::into_inner)
}

impl CliqueDrift {
    fn publish_quantiles(&self) {
        let snap = self.distribution.snapshot();
        for (gauge, (_, q)) in self.published_quantiles.iter().zip(PUBLISHED_QUANTILES) {
            gauge.set(snap.percentile(q).map_or(0.0, |v| v / ERROR_SCALE));
        }
    }
}

/// Rolling absolute-relative-error statistics per model clique.
///
/// The per-clique gauges live in the global registry keyed by clique
/// *index*, so when several synopses coexist in one process the gauges
/// reflect the most recently fed monitor; per-synopsis readings are
/// always available through [`DriftMonitor::drift`] on the owning
/// estimator.
#[derive(Debug)]
pub struct DriftMonitor {
    window: usize,
    cliques: Vec<CliqueDrift>,
    observed: Counter,
    dropped: Counter,
}

impl DriftMonitor {
    /// Creates a monitor for `n_cliques` cliques with the given rolling
    /// window length (clamped to at least 1).
    #[must_use]
    pub fn new(n_cliques: usize, window: usize) -> Self {
        let window = window.max(1);
        let cliques = (0..n_cliques)
            .map(|i| CliqueDrift {
                errors: Mutex::new(VecDeque::with_capacity(window)),
                mean: Gauge::default(),
                distribution: LatencyHistogram::default(),
                published: registry::global()
                    .gauge(&format!("dbhist_estimator_drift_ratio{{clique=\"{i}\"}}")),
                published_quantiles: PUBLISHED_QUANTILES
                    .iter()
                    .map(|(family, _)| {
                        registry::global().gauge(&format!("{family}{{clique=\"{i}\"}}"))
                    })
                    .collect(),
            })
            .collect();
        Self { window, cliques, observed: Counter::default(), dropped: Counter::default() }
    }

    /// Records one feedback observation for `clique` (out-of-range clique
    /// indices are ignored). `abs_rel_error` is `|estimate − actual| /
    /// actual`; negative inputs are folded to their absolute value.
    ///
    /// Non-finite errors are **dropped**: they are counted in
    /// [`DriftMonitor::dropped`] (mirrored to
    /// `dbhist_estimator_feedback_dropped_total` when telemetry is
    /// enabled) but never enter the window or the distribution, and do
    /// not count as observations.
    pub fn record(&self, clique: usize, abs_rel_error: f64) {
        let Some(c) = self.cliques.get(clique) else { return };
        if !abs_rel_error.is_finite() {
            self.dropped.increment();
            if registry::enabled() {
                wellknown().estimator_feedback_dropped.increment();
            }
            return;
        }
        let abs = abs_rel_error.abs();
        let mean = {
            let mut errors = lock(&c.errors);
            if errors.len() == self.window {
                errors.pop_front();
            }
            errors.push_back(abs);
            errors.iter().sum::<f64>() / errors.len() as f64
        };
        c.mean.set(mean);
        c.distribution.record(scale_error(abs));
        if registry::enabled() {
            c.published.set(mean);
            c.publish_quantiles();
        }
        self.observed.increment();
    }

    /// Rolling mean absolute relative error for `clique` (0.0 before any
    /// feedback, or for an out-of-range index).
    #[must_use]
    pub fn drift(&self, clique: usize) -> f64 {
        self.cliques.get(clique).map_or(0.0, |c| c.mean.value())
    }

    /// The worst per-clique drift — the value maintenance policies
    /// threshold on.
    #[must_use]
    pub fn max_drift(&self) -> f64 {
        self.cliques.iter().map(|c| c.mean.value()).fold(0.0, f64::max)
    }

    /// The `q`-th percentile (`0..=100`) of every abs-rel-error ever
    /// recorded for `clique`, or `None` before any feedback / for an
    /// out-of-range index. Quantized by the fixed-point encoding to
    /// [`ERROR_SCALE`] resolution.
    #[must_use]
    pub fn error_quantile(&self, clique: usize, q: f64) -> Option<f64> {
        let c = self.cliques.get(clique)?;
        c.distribution.snapshot().percentile(q).map(|v| v / ERROR_SCALE)
    }

    /// The worst per-clique `q`-th error percentile — the tail analogue
    /// of [`DriftMonitor::max_drift`], for quantile-based maintenance
    /// triggers.
    #[must_use]
    pub fn max_error_quantile(&self, q: f64) -> f64 {
        (0..self.cliques.len()).filter_map(|i| self.error_quantile(i, q)).fold(0.0, f64::max)
    }

    /// Point-in-time snapshot of `clique`'s full error distribution (in
    /// fixed-point [`ERROR_SCALE`] units), or `None` for an out-of-range
    /// index.
    #[must_use]
    pub fn error_distribution(&self, clique: usize) -> Option<HistogramSnapshot> {
        self.cliques.get(clique).map(|c| c.distribution.snapshot())
    }

    /// Total feedback observations recorded into this monitor.
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.observed.value()
    }

    /// Non-finite feedback observations dropped (never recorded).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.value()
    }

    /// Number of cliques tracked.
    #[must_use]
    pub fn n_cliques(&self) -> usize {
        self.cliques.len()
    }

    /// Rolling window length.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Clears every window and distribution and zeroes the gauges (e.g.
    /// right after a rebuild, when accumulated drift no longer describes
    /// the new synopsis).
    pub fn reset(&self) {
        for c in &self.cliques {
            Self::reset_one(c);
        }
        self.observed.reset();
        self.dropped.reset();
    }

    /// Clears one clique's window, distribution, and gauges — used after
    /// a feedback-triggered re-split replaces just that clique's factor,
    /// so stale errors do not immediately re-trip the trigger. The
    /// monitor-global [`DriftMonitor::observations`] / dropped counters
    /// are left untouched: they describe feedback *volume*, not the
    /// current factors. Out-of-range indices are ignored.
    pub fn reset_clique(&self, clique: usize) {
        if let Some(c) = self.cliques.get(clique) {
            Self::reset_one(c);
        }
    }

    fn reset_one(c: &CliqueDrift) {
        lock(&c.errors).clear();
        c.mean.set(0.0);
        c.distribution.reset();
        if registry::enabled() {
            c.published.set(0.0);
            for gauge in &c.published_quantiles {
                gauge.set(0.0);
            }
        }
    }
}

impl Clone for DriftMonitor {
    /// Clones the windows, local means, and error distributions; the
    /// registry-published gauges are shared (they are keyed by clique
    /// index in the global registry).
    fn clone(&self) -> Self {
        Self {
            window: self.window,
            cliques: self
                .cliques
                .iter()
                .map(|c| {
                    let mean = Gauge::default();
                    mean.set(c.mean.value());
                    let distribution = LatencyHistogram::default();
                    distribution.absorb(&c.distribution);
                    CliqueDrift {
                        errors: Mutex::new(lock(&c.errors).clone()),
                        mean,
                        distribution,
                        published: Arc::clone(&c.published),
                        published_quantiles: c.published_quantiles.iter().map(Arc::clone).collect(),
                    }
                })
                .collect(),
            observed: {
                let observed = Counter::default();
                observed.add(self.observed.value());
                observed
            },
            dropped: {
                let dropped = Counter::default();
                dropped.add(self.dropped.value());
                dropped
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_mean_tracks_window() {
        let m = DriftMonitor::new(2, 4);
        for _ in 0..4 {
            m.record(0, 1.0);
        }
        assert!((m.drift(0) - 1.0).abs() < 1e-12);
        // Four more small errors push the large ones out of the window.
        for _ in 0..4 {
            m.record(0, 0.1);
        }
        assert!((m.drift(0) - 0.1).abs() < 1e-12);
        assert!(m.drift(1).abs() < 1e-12, "untouched clique stays at zero");
        assert_eq!(m.observations(), 8);
        assert!((m.max_drift() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn ignores_garbage() {
        let m = DriftMonitor::new(1, 8);
        m.record(5, 1.0); // out of range
        m.record(0, f64::NAN);
        m.record(0, f64::INFINITY);
        assert_eq!(m.observations(), 0);
        assert_eq!(m.dropped(), 2, "non-finite feedback is counted, not recorded");
        m.record(0, -0.5); // folded to |.|
        assert!((m.drift(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn error_distribution_exposes_quantiles() {
        let m = DriftMonitor::new(2, 4);
        // 100 errors: 0.00, 0.01, …, 0.99 — a uniform ramp.
        for i in 0..100 {
            m.record(0, f64::from(i) / 100.0);
        }
        let q50 = m.error_quantile(0, 50.0).unwrap_or(0.0);
        let q99 = m.error_quantile(0, 99.0).unwrap_or(0.0);
        assert!((0.35..=0.65).contains(&q50), "q50 {q50}");
        assert!((0.90..=1.05).contains(&q99), "q99 {q99}");
        assert!(q50 < q99);
        // The distribution is cumulative: it still sees all 100
        // observations even though the rolling window holds only 4.
        let snap = m.error_distribution(0).expect("clique 0 exists");
        assert_eq!(snap.count, 100);
        assert!(m.error_quantile(1, 50.0).is_none(), "untouched clique has no distribution");
        assert!(m.error_quantile(9, 50.0).is_none(), "out of range");
        assert!((m.max_error_quantile(99.0) - q99).abs() < 1e-12);
    }

    #[test]
    fn quantile_gauges_publish_when_enabled() {
        let _serial = crate::test_support::enabled_flag_lock();
        registry::set_enabled(true);
        let m = DriftMonitor::new(1, 8);
        for _ in 0..10 {
            m.record(0, 0.5);
        }
        registry::set_enabled(false);
        let snap = registry::snapshot();
        for (family, _) in PUBLISHED_QUANTILES {
            let name = format!("{family}{{clique=\"0\"}}");
            let v = snap.gauge(&name).unwrap_or(-1.0);
            assert!((0.4..=0.6).contains(&v), "{name} = {v}");
        }
    }

    #[test]
    fn reset_clears_everything() {
        let m = DriftMonitor::new(1, 8);
        m.record(0, 2.0);
        m.record(0, f64::NAN);
        assert!(m.max_drift() > 1.0);
        m.reset();
        assert!(m.max_drift().abs() < 1e-12);
        assert_eq!(m.observations(), 0);
        assert_eq!(m.dropped(), 0);
        assert!(m.error_quantile(0, 50.0).is_none(), "distribution cleared");
    }

    #[test]
    fn reset_clique_clears_only_that_clique() {
        let m = DriftMonitor::new(2, 8);
        m.record(0, 2.0);
        m.record(1, 0.4);
        m.reset_clique(0);
        assert!(m.drift(0).abs() < 1e-12, "clique 0 cleared");
        assert!(m.error_quantile(0, 95.0).is_none(), "distribution cleared");
        assert!((m.drift(1) - 0.4).abs() < 1e-12, "clique 1 untouched");
        assert_eq!(m.observations(), 2, "volume counters survive a per-clique reset");
        m.reset_clique(9); // out of range: a no-op
        assert!((m.drift(1) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn clone_shares_gauges_but_not_windows() {
        let m = DriftMonitor::new(1, 4);
        m.record(0, 1.0);
        let c = m.clone();
        assert!((c.drift(0) - 1.0).abs() < 1e-12);
        c.record(0, 0.0);
        // The clone's window diverges; the original's local mean is
        // untouched.
        assert!((c.drift(0) - 0.5).abs() < 1e-12);
        assert!((m.drift(0) - 1.0).abs() < 1e-12);
        assert_eq!(m.observations(), 1, "original's observation count unchanged");
        // The clone carried the distribution and diverges independently.
        assert_eq!(c.error_distribution(0).map_or(0, |s| s.count), 2);
        assert_eq!(m.error_distribution(0).map_or(0, |s| s.count), 1);
    }
}
