//! A bounded, mostly-lock-free journal of structured engine events.
//!
//! Metrics answer "how many / how fast"; the journal answers "what
//! happened, in order". Producers publish typed [`JournalEvent`]s into a
//! fixed-capacity ring: claiming a slot is one wait-free `fetch_add` on
//! the head sequence, and publication touches only that slot's own mutex
//! (never contended unless the ring has wrapped onto a concurrent
//! reader). When the ring is full the *oldest* events are overwritten —
//! observability must never apply backpressure to the serving path.
//!
//! [`Journal::drain`] removes everything currently buffered and returns
//! it in sequence order, so concurrent drains partition the stream:
//! every published event that was not overwritten is seen by exactly one
//! drainer, exactly once (pinned by the racing-writers test below).
//! [`Journal::drain_jsonl`] renders the same drain as JSON Lines for the
//! `/journal` observability endpoint.
//!
//! Event-type strings are `snake_case` by convention, enforced by the
//! `journal-event-name` rule in `dbhist-analyze`.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use crate::export::{fmt_f64, json_escape};

/// Default ring capacity of the process-wide [`journal`].
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1024;

/// One structured engine event.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEvent {
    /// A served query sampled for EXPLAIN: which generation answered it
    /// and the resolved execution path (the report's JSON rendering).
    QuerySampled {
        /// Synopsis generation that served the query.
        generation: u64,
        /// The estimate returned to the client.
        estimate: f64,
        /// Resolved path summary, e.g. `"kernel_hit"` or `"plan_compiled"`.
        path: String,
    },
    /// A zero-downtime synopsis swap completed.
    GenerationSwap {
        /// The generation number now serving.
        generation: u64,
        /// Wall-clock nanoseconds the swap critical section took.
        latency_ns: u64,
    },
    /// A maintenance rebuild produced a fresh synopsis.
    Rebuild {
        /// Rows the new synopsis was built from.
        rows: u64,
        /// Worst per-clique drift at the moment the rebuild triggered.
        max_drift: f64,
    },
    /// A clique's accuracy drift crossed the maintenance threshold.
    DriftTrip {
        /// Index of the tripping clique.
        clique: usize,
        /// The drift reading that tripped.
        drift: f64,
    },
    /// A bounded cache evicted an entry under capacity pressure.
    CacheEviction {
        /// Which cache (`"plan"`, `"marginal"`, `"kernel"`).
        cache: String,
        /// Entries resident after the eviction.
        entries: u64,
    },
    /// An ingest batch was made durable in the write-ahead log.
    WalAppend {
        /// Sequence number the batch committed at.
        seq: u64,
        /// Tuple operations in the batch.
        ops: u64,
        /// Encoded record bytes appended (framing included).
        bytes: u64,
    },
    /// The write-ahead log was atomically restarted after a snapshot.
    WalTruncate {
        /// Batches the discarded log generation held.
        batches: u64,
    },
    /// A feedback-triggered re-split replaced one clique's factor
    /// without a full rebuild.
    Resplit {
        /// Index of the re-split clique.
        clique: usize,
        /// Buckets in the replacement factor.
        buckets: u64,
    },
}

impl JournalEvent {
    /// The event's `snake_case` type tag, as rendered in JSONL.
    #[must_use]
    pub fn event_type(&self) -> &'static str {
        match self {
            JournalEvent::QuerySampled { .. } => "query_sampled",
            JournalEvent::GenerationSwap { .. } => "generation_swap",
            JournalEvent::Rebuild { .. } => "rebuild",
            JournalEvent::DriftTrip { .. } => "drift_trip",
            JournalEvent::CacheEviction { .. } => "cache_eviction",
            JournalEvent::WalAppend { .. } => "wal_append",
            JournalEvent::WalTruncate { .. } => "wal_truncate",
            JournalEvent::Resplit { .. } => "resplit",
        }
    }

    /// Renders the event as one JSON object (no trailing newline).
    #[must_use]
    pub fn to_json(&self, seq: u64) -> String {
        let mut s = String::new();
        let _ = write!(s, "{{\"seq\":{seq},\"event\":\"{}\"", self.event_type());
        match self {
            JournalEvent::QuerySampled { generation, estimate, path } => {
                let _ = write!(
                    s,
                    ",\"generation\":{generation},\"estimate\":{},\"path\":\"{}\"",
                    fmt_f64(*estimate),
                    json_escape(path)
                );
            }
            JournalEvent::GenerationSwap { generation, latency_ns } => {
                let _ = write!(s, ",\"generation\":{generation},\"latency_ns\":{latency_ns}");
            }
            JournalEvent::Rebuild { rows, max_drift } => {
                let _ = write!(s, ",\"rows\":{rows},\"max_drift\":{}", fmt_f64(*max_drift));
            }
            JournalEvent::DriftTrip { clique, drift } => {
                let _ = write!(s, ",\"clique\":{clique},\"drift\":{}", fmt_f64(*drift));
            }
            JournalEvent::CacheEviction { cache, entries } => {
                let _ = write!(s, ",\"cache\":\"{}\",\"entries\":{entries}", json_escape(cache));
            }
            JournalEvent::WalAppend { seq: batch_seq, ops, bytes } => {
                let _ = write!(s, ",\"batch_seq\":{batch_seq},\"ops\":{ops},\"bytes\":{bytes}");
            }
            JournalEvent::WalTruncate { batches } => {
                let _ = write!(s, ",\"batches\":{batches}");
            }
            JournalEvent::Resplit { clique, buckets } => {
                let _ = write!(s, ",\"clique\":{clique},\"buckets\":{buckets}");
            }
        }
        s.push('}');
        s
    }
}

type Slot = Mutex<Option<(u64, JournalEvent)>>;

fn lock(slot: &Slot) -> MutexGuard<'_, Option<(u64, JournalEvent)>> {
    // A poisoned slot only means another thread panicked mid-publish;
    // the Option is always structurally sound.
    slot.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A fixed-capacity multi-producer multi-consumer event ring.
///
/// Publishing claims a globally ordered sequence number with one
/// `fetch_add` and stores the event into slot `seq % capacity` under
/// that slot's own mutex; the oldest event in the slot (if any) is
/// overwritten and counted in [`Journal::overwritten`]. Draining takes
/// every resident event and returns them sequence-sorted.
#[derive(Debug)]
pub struct Journal {
    /// Next sequence number to hand out. `Relaxed` suffices: slot
    /// contents are published under the slot mutex, and drains order by
    /// the stored sequence number, not by observation order.
    head: AtomicU64,
    slots: Box<[Slot]>,
    overwritten: AtomicU64,
}

impl Journal {
    /// Creates a ring holding at most `capacity` events (clamped to at
    /// least 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        let mut slots = Vec::with_capacity(cap);
        slots.resize_with(cap, || Mutex::new(None));
        Self {
            head: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
            overwritten: AtomicU64::new(0),
        }
    }

    /// Ring capacity (maximum buffered events).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever published (the next sequence number).
    #[must_use]
    pub fn published(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events lost to ring wrap-around (overwritten before any drain).
    #[must_use]
    pub fn overwritten(&self) -> u64 {
        self.overwritten.load(Ordering::Relaxed)
    }

    /// Publishes one event, returning its sequence number. Wait-free up
    /// to the per-slot mutex, which is uncontended unless the ring wraps
    /// onto a concurrent drain.
    pub fn publish(&self, event: JournalEvent) -> u64 {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let idx = usize::try_from(seq % self.slots.len() as u64).unwrap_or(0);
        if let Some(slot) = self.slots.get(idx) {
            let evicted = lock(slot).replace((seq, event));
            if evicted.is_some() {
                self.overwritten.fetch_add(1, Ordering::Relaxed);
            }
        }
        seq
    }

    /// Removes and returns every buffered event, oldest first. Each
    /// published event is returned by exactly one drain (slots are
    /// `take`n under their mutex), so concurrent drains partition the
    /// stream without loss or duplication.
    #[must_use]
    pub fn drain(&self) -> Vec<(u64, JournalEvent)> {
        let mut out: Vec<(u64, JournalEvent)> = Vec::new();
        for slot in &*self.slots {
            if let Some(entry) = lock(slot).take() {
                out.push(entry);
            }
        }
        out.sort_by_key(|(seq, _)| *seq);
        out
    }

    /// Drains the ring and renders each event as one JSON line.
    #[must_use]
    pub fn drain_jsonl(&self) -> String {
        let mut s = String::new();
        for (seq, event) in self.drain() {
            s.push_str(&event.to_json(seq));
            s.push('\n');
        }
        s
    }

    /// Number of currently buffered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|slot| lock(slot).is_some()).count()
    }

    /// `true` when nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The process-wide journal (capacity [`DEFAULT_JOURNAL_CAPACITY`]).
/// Producers gate publication on [`crate::registry::enabled`] — with
/// telemetry off, nothing is ever published here.
#[must_use]
pub fn journal() -> &'static Journal {
    static GLOBAL: OnceLock<Journal> = OnceLock::new();
    GLOBAL.get_or_init(|| Journal::new(DEFAULT_JOURNAL_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn swap(generation: u64) -> JournalEvent {
        JournalEvent::GenerationSwap { generation, latency_ns: 100 }
    }

    #[test]
    fn publish_then_drain_is_ordered() {
        let j = Journal::new(8);
        for g in 0..5 {
            j.publish(swap(g));
        }
        assert_eq!(j.len(), 5);
        let drained = j.drain();
        assert_eq!(drained.len(), 5);
        for (i, (seq, event)) in drained.iter().enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(*event, swap(i as u64));
        }
        assert!(j.is_empty(), "drain is destructive");
        assert_eq!(j.overwritten(), 0);
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let j = Journal::new(4);
        for g in 0..10 {
            j.publish(swap(g));
        }
        let drained = j.drain();
        assert_eq!(drained.len(), 4, "capacity bounds residency");
        let seqs: Vec<u64> = drained.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "newest survive, oldest overwritten");
        assert_eq!(j.overwritten(), 6);
        assert_eq!(j.published(), 10);
    }

    #[test]
    fn jsonl_renders_every_event_kind() {
        let j = Journal::new(8);
        j.publish(JournalEvent::QuerySampled {
            generation: 1,
            estimate: 42.5,
            path: "kernel_hit".to_string(),
        });
        j.publish(JournalEvent::GenerationSwap { generation: 2, latency_ns: 1234 });
        j.publish(JournalEvent::Rebuild { rows: 4096, max_drift: 0.25 });
        j.publish(JournalEvent::DriftTrip { clique: 3, drift: 0.6 });
        j.publish(JournalEvent::CacheEviction { cache: "plan".to_string(), entries: 64 });
        j.publish(JournalEvent::WalAppend { seq: 9, ops: 128, bytes: 1664 });
        j.publish(JournalEvent::WalTruncate { batches: 10 });
        j.publish(JournalEvent::Resplit { clique: 2, buckets: 48 });
        let jsonl = j.drain_jsonl();
        assert_eq!(jsonl.lines().count(), 8);
        assert!(jsonl.contains("\"event\":\"query_sampled\""));
        assert!(jsonl.contains("\"path\":\"kernel_hit\""));
        assert!(jsonl.contains("\"event\":\"generation_swap\""));
        assert!(jsonl.contains("\"latency_ns\":1234"));
        assert!(jsonl.contains("\"event\":\"rebuild\""));
        assert!(jsonl.contains("\"event\":\"drift_trip\""));
        assert!(jsonl.contains("\"event\":\"cache_eviction\""));
        assert!(jsonl.contains("\"event\":\"wal_append\""));
        assert!(jsonl.contains("\"batch_seq\":9"));
        assert!(jsonl.contains("\"event\":\"wal_truncate\""));
        assert!(jsonl.contains("\"event\":\"resplit\""));
        assert!(jsonl.contains("\"buckets\":48"));
        for line in jsonl.lines() {
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
    }

    #[test]
    fn racing_writers_lose_nothing_within_capacity() {
        // Capacity covers every event, so nothing may be overwritten and
        // interleaved drains must partition the stream exactly.
        const WRITERS: u64 = 8;
        const PER_WRITER: u64 = 500;
        let j = Journal::new(usize::try_from(WRITERS * PER_WRITER).unwrap_or(4000));
        let drained = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let j = &j;
                scope.spawn(move || {
                    for i in 0..PER_WRITER {
                        j.publish(swap(w * PER_WRITER + i));
                    }
                });
            }
            // Two racing drainers run concurrently with the writers.
            for _ in 0..2 {
                let j = &j;
                let drained = &drained;
                scope.spawn(move || {
                    for _ in 0..50 {
                        let batch = j.drain();
                        drained.lock().unwrap_or_else(PoisonError::into_inner).extend(batch);
                        std::thread::yield_now();
                    }
                });
            }
        });
        let mut all = drained.into_inner().unwrap_or_else(PoisonError::into_inner);
        all.extend(j.drain());
        assert_eq!(j.overwritten(), 0, "capacity covers every event");
        assert_eq!(all.len(), usize::try_from(WRITERS * PER_WRITER).unwrap_or(0));
        let mut seqs: Vec<u64> = all.iter().map(|(s, _)| *s).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), all.len(), "no event is drained twice");
        assert_eq!(seqs.first(), Some(&0));
        assert_eq!(seqs.last(), Some(&(WRITERS * PER_WRITER - 1)));
    }
}
