//! Pre-registered handles for every metric the dbhist engine emits.
//!
//! Hot paths (plan execution, cache lookups) must never pay a name hash
//! or registry lock per event; they go through these handles, resolved
//! once per process. Names follow the repo convention
//! `dbhist_<subsystem>_<name>_<unit>`, enforced by the xtask lint.

use std::sync::{Arc, OnceLock};

use crate::registry::{self, Counter, Gauge, LatencyHistogram};

/// One handle per engine metric. Obtain via [`wellknown`].
#[derive(Debug)]
#[allow(missing_docs)] // field names mirror the metric names below
pub struct WellKnown {
    // Query path (mirrored from per-engine `QueryTrace` accounting).
    pub query_estimates: Arc<Counter>,
    pub query_products: Arc<Counter>,
    pub query_projections: Arc<Counter>,
    pub query_identity_projections: Arc<Counter>,
    pub query_sheds: Arc<Counter>,
    pub query_sheds_skipped: Arc<Counter>,
    pub query_clique_loads: Arc<Counter>,
    pub query_factor_clones: Arc<Counter>,
    pub query_plans_compiled: Arc<Counter>,
    pub query_plan_cache_hits: Arc<Counter>,
    pub query_plan_cache_misses: Arc<Counter>,
    pub query_marginal_cache_hits: Arc<Counter>,
    pub query_marginal_cache_misses: Arc<Counter>,
    pub query_kernel_hits: Arc<Counter>,
    pub query_kernel_lowered_dense: Arc<Counter>,
    pub query_kernel_lowered_sparse: Arc<Counter>,
    pub query_kernel_fallbacks: Arc<Counter>,
    /// Wall-clock nanoseconds per `estimate_mass` / `marginal` call.
    pub query_latency: Arc<LatencyHistogram>,

    // Build path.
    pub build_selection_rounds: Arc<Counter>,
    pub build_splits_funded: Arc<Counter>,
    pub build_builds: Arc<Counter>,

    // Model-selection entropy cache.
    pub model_entropy_computations: Arc<Counter>,
    pub model_entropy_cache_hits: Arc<Counter>,

    // Estimator feedback.
    pub estimator_feedback: Arc<Counter>,
    /// Non-finite feedback observations dropped by `DriftMonitor::record`
    /// (never entering any window or distribution).
    pub estimator_feedback_dropped: Arc<Counter>,

    // Estimator service (concurrent serving path).
    pub serve_requests: Arc<Counter>,
    pub serve_batches: Arc<Counter>,
    pub serve_swaps: Arc<Counter>,
    /// Replies whose client hung up before delivery (0 in steady state;
    /// `swap()` never drops an in-flight query).
    pub serve_dropped_replies: Arc<Counter>,
    /// Wall-clock nanoseconds from batch submission to reply, recorded
    /// once per request in the batch.
    pub serve_latency: Arc<LatencyHistogram>,
    /// Wall-clock nanoseconds of each generation swap's critical section.
    pub serve_swap_latency: Arc<LatencyHistogram>,
    /// Events published into the serving journal.
    pub serve_journal_events: Arc<Counter>,

    // Streaming ingest (tuple batches + write-ahead log).
    pub ingest_batches: Arc<Counter>,
    pub ingest_ops: Arc<Counter>,
    /// Feedback-triggered single-clique re-splits (rebuild avoided).
    pub ingest_resplits: Arc<Counter>,
    /// Crash recoveries completed (snapshot load + WAL tail replay).
    pub ingest_recoveries: Arc<Counter>,
    /// Record bytes appended to the write-ahead log this generation.
    pub ingest_wal_bytes: Arc<Gauge>,

    // Snapshot persistence.
    pub persist_saves: Arc<Counter>,
    pub persist_loads: Arc<Counter>,
    /// Wall-clock seconds of the most recent snapshot save.
    pub persist_save_seconds: Arc<Gauge>,
    /// Wall-clock seconds of the most recent snapshot load.
    pub persist_load_seconds: Arc<Gauge>,
    /// Byte size of the most recently saved or loaded snapshot.
    pub persist_snapshot_bytes: Arc<Gauge>,
}

/// The process-wide [`WellKnown`] handle set (resolved on first use).
pub fn wellknown() -> &'static WellKnown {
    static HANDLES: OnceLock<WellKnown> = OnceLock::new();
    HANDLES.get_or_init(|| {
        let r = registry::global();
        WellKnown {
            query_estimates: r.counter("dbhist_query_estimates_total"),
            query_products: r.counter("dbhist_query_products_total"),
            query_projections: r.counter("dbhist_query_projections_total"),
            query_identity_projections: r.counter("dbhist_query_identity_projections_total"),
            query_sheds: r.counter("dbhist_query_sheds_total"),
            query_sheds_skipped: r.counter("dbhist_query_sheds_skipped_total"),
            query_clique_loads: r.counter("dbhist_query_clique_loads_total"),
            query_factor_clones: r.counter("dbhist_query_factor_clones_total"),
            query_plans_compiled: r.counter("dbhist_query_plans_compiled_total"),
            query_plan_cache_hits: r.counter("dbhist_query_plan_cache_hits_total"),
            query_plan_cache_misses: r.counter("dbhist_query_plan_cache_misses_total"),
            query_marginal_cache_hits: r.counter("dbhist_query_marginal_cache_hits_total"),
            query_marginal_cache_misses: r.counter("dbhist_query_marginal_cache_misses_total"),
            query_kernel_hits: r.counter("dbhist_query_kernel_hits_total"),
            query_kernel_lowered_dense: r.counter("dbhist_query_kernel_lowered_dense_total"),
            query_kernel_lowered_sparse: r.counter("dbhist_query_kernel_lowered_sparse_total"),
            query_kernel_fallbacks: r.counter("dbhist_query_kernel_fallbacks_total"),
            query_latency: r.histogram("dbhist_query_estimate_latency_ns"),
            build_selection_rounds: r.counter("dbhist_build_selection_rounds_total"),
            build_splits_funded: r.counter("dbhist_build_splits_funded_total"),
            build_builds: r.counter("dbhist_build_builds_total"),
            model_entropy_computations: r.counter("dbhist_model_entropy_computations_total"),
            model_entropy_cache_hits: r.counter("dbhist_model_entropy_cache_hits_total"),
            estimator_feedback: r.counter("dbhist_estimator_feedback_total"),
            estimator_feedback_dropped: r.counter("dbhist_estimator_feedback_dropped_total"),
            serve_requests: r.counter("dbhist_serve_requests_total"),
            serve_batches: r.counter("dbhist_serve_batches_total"),
            serve_swaps: r.counter("dbhist_serve_swaps_total"),
            serve_dropped_replies: r.counter("dbhist_serve_dropped_replies_total"),
            serve_latency: r.histogram("dbhist_serve_request_latency_ns"),
            serve_swap_latency: r.histogram("dbhist_serve_swap_latency_ns"),
            serve_journal_events: r.counter("dbhist_serve_journal_events_total"),
            ingest_batches: r.counter("dbhist_ingest_batches_total"),
            ingest_ops: r.counter("dbhist_ingest_ops_total"),
            ingest_resplits: r.counter("dbhist_ingest_resplits_total"),
            ingest_recoveries: r.counter("dbhist_ingest_recoveries_total"),
            ingest_wal_bytes: r.gauge("dbhist_ingest_wal_bytes"),
            persist_saves: r.counter("dbhist_persist_saves_total"),
            persist_loads: r.counter("dbhist_persist_loads_total"),
            persist_save_seconds: r.gauge("dbhist_persist_save_seconds"),
            persist_load_seconds: r.gauge("dbhist_persist_load_seconds"),
            persist_snapshot_bytes: r.gauge("dbhist_persist_snapshot_bytes"),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_resolve_once_and_share_state() {
        let a = wellknown();
        let b = wellknown();
        let before = a.query_estimates.value();
        b.query_estimates.increment();
        assert_eq!(a.query_estimates.value(), before + 1);
    }

    #[test]
    fn every_wellknown_name_is_registered_globally() {
        let _ = wellknown();
        let snap = registry::snapshot();
        for name in [
            "dbhist_query_estimates_total",
            "dbhist_query_plan_cache_hits_total",
            "dbhist_query_kernel_hits_total",
            "dbhist_query_kernel_lowered_dense_total",
            "dbhist_query_kernel_lowered_sparse_total",
            "dbhist_query_kernel_fallbacks_total",
            "dbhist_query_estimate_latency_ns",
            "dbhist_build_selection_rounds_total",
            "dbhist_build_splits_funded_total",
            "dbhist_model_entropy_cache_hits_total",
            "dbhist_estimator_feedback_total",
            "dbhist_estimator_feedback_dropped_total",
            "dbhist_serve_requests_total",
            "dbhist_serve_swaps_total",
            "dbhist_serve_request_latency_ns",
            "dbhist_serve_swap_latency_ns",
            "dbhist_serve_journal_events_total",
            "dbhist_ingest_batches_total",
            "dbhist_ingest_ops_total",
            "dbhist_ingest_resplits_total",
            "dbhist_ingest_recoveries_total",
            "dbhist_ingest_wal_bytes",
            "dbhist_persist_saves_total",
            "dbhist_persist_loads_total",
            "dbhist_persist_save_seconds",
            "dbhist_persist_load_seconds",
            "dbhist_persist_snapshot_bytes",
        ] {
            assert!(snap.get(name).is_some(), "{name} must be registered");
        }
    }
}
