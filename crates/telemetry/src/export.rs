//! Snapshot exporters: JSON and Prometheus text exposition format.
//!
//! Both render the *same* [`Snapshot`], so a scrape endpoint and a log
//! artifact can never disagree. Everything is hand-rolled string
//! assembly — the workspace builds without a crate registry, so no serde
//! on this path.

use std::fmt::Write as _;

use crate::registry::{HistogramSnapshot, MetricValue, Snapshot};

/// Splits `dbhist_x_y_total{label="v"}` into `("dbhist_x_y_total",
/// `{label="v"}`)`; the label part is empty for unlabeled metrics.
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => name.split_at(i),
        None => (name, ""),
    }
}

/// Renders an `f64` so it round-trips and stays valid JSON (no `NaN` /
/// `inf` literals). Shared with the journal's JSONL rendering.
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` prints integral floats without a dot; keep a decimal point
        // so JSON consumers see a float.
        if s.contains('.') || s.contains('e') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

pub(crate) fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_histogram(h: &HistogramSnapshot) -> String {
    let mut s = String::new();
    let _ = write!(s, "{{\"type\":\"histogram\",\"count\":{},\"sum\":{}", h.count, h.sum);
    for (label, q) in [("p50", 50.0), ("p90", 90.0), ("p99", 99.0)] {
        let _ =
            write!(s, ",\"{label}\":{}", h.percentile(q).map_or_else(|| "null".into(), fmt_f64));
    }
    s.push_str(",\"buckets\":[");
    for (i, b) in h.histogram.buckets().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{{\"lo\":{},\"hi\":{},\"count\":{}}}", b.lo, b.hi, b.freq as u64);
    }
    s.push_str("]}");
    s
}

/// Renders the snapshot as one JSON object keyed by metric name.
///
/// Counters become `{"type":"counter","value":N}`, gauges
/// `{"type":"gauge","value":X}`, histograms
/// `{"type":"histogram","count":N,"sum":S,"p50":…,"p90":…,"p99":…,
/// "buckets":[{"lo":…,"hi":…,"count":…},…]}`.
#[must_use]
pub fn to_json(snapshot: &Snapshot) -> String {
    let mut s = String::from("{\"metrics\":{");
    for (i, m) in snapshot.metrics.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\":", json_escape(&m.name));
        match &m.value {
            MetricValue::Counter(v) => {
                let _ = write!(s, "{{\"type\":\"counter\",\"value\":{v}}}");
            }
            MetricValue::Gauge(v) => {
                let _ = write!(s, "{{\"type\":\"gauge\",\"value\":{}}}", fmt_f64(*v));
            }
            MetricValue::Histogram(h) => s.push_str(&json_histogram(h)),
        }
    }
    s.push_str("}}\n");
    s
}

/// Renders the snapshot in the Prometheus text exposition format.
///
/// Latency histograms expand to the conventional cumulative
/// `<name>_bucket{le="…"}` series plus `<name>_sum` / `<name>_count`;
/// labeled gauges (e.g. the per-clique drift gauges) pass their label
/// sets through. A `# TYPE` line is emitted once per metric family.
#[must_use]
pub fn to_prometheus(snapshot: &Snapshot) -> String {
    let mut s = String::new();
    let mut last_family = "";
    for m in &snapshot.metrics {
        let (base, labels) = split_labels(&m.name);
        let kind = match &m.value {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        };
        if base != last_family {
            let _ = writeln!(s, "# TYPE {base} {kind}");
        }
        match &m.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(s, "{base}{labels} {v}");
            }
            MetricValue::Gauge(v) => {
                let v = if v.is_finite() { *v } else { 0.0 };
                let _ = writeln!(s, "{base}{labels} {v}");
            }
            MetricValue::Histogram(h) => {
                let mut cumulative = 0u64;
                for b in h.histogram.buckets() {
                    cumulative += b.freq as u64;
                    let _ = writeln!(s, "{base}_bucket{{le=\"{}\"}} {cumulative}", b.hi);
                }
                let _ = writeln!(s, "{base}_bucket{{le=\"+Inf\"}} {}", h.count.max(cumulative));
                let _ = writeln!(s, "{base}_sum {}", h.sum);
                let _ = writeln!(s, "{base}_count {}", h.count);
            }
        }
        last_family = base;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> Snapshot {
        let r = Registry::default();
        r.counter("dbhist_test_export_total").add(7);
        r.gauge("dbhist_test_export_ratio{clique=\"0\"}").set(0.25);
        r.gauge("dbhist_test_export_ratio{clique=\"1\"}").set(0.75);
        let h = r.histogram("dbhist_test_export_latency_ns");
        for v in [5u64, 5, 100, 100_000] {
            h.record(v);
        }
        r.snapshot()
    }

    #[test]
    fn json_contains_every_metric() {
        let snap = sample();
        let json = to_json(&snap);
        assert!(json.contains("\"dbhist_test_export_total\":{\"type\":\"counter\",\"value\":7}"));
        assert!(json.contains("dbhist_test_export_ratio{clique=\\\"0\\\"}"));
        assert!(json.contains("\"value\":0.25"));
        assert!(json.contains("\"type\":\"histogram\",\"count\":4"));
        assert!(json.contains("\"p50\":"));
        assert!(json.contains("\"p99\":"));
        // Balanced braces: a cheap structural sanity check for the
        // hand-rolled encoder (no brace characters occur inside strings).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn prometheus_renders_families_and_cumulative_buckets() {
        let snap = sample();
        let prom = to_prometheus(&snap);
        assert!(prom.contains("# TYPE dbhist_test_export_total counter"));
        assert!(prom.contains("dbhist_test_export_total 7"));
        assert!(prom.contains("dbhist_test_export_ratio{clique=\"0\"} 0.25"));
        assert!(prom.contains("dbhist_test_export_ratio{clique=\"1\"} 0.75"));
        assert_eq!(
            prom.matches("# TYPE dbhist_test_export_ratio gauge").count(),
            1,
            "one TYPE line per family"
        );
        assert!(prom.contains("# TYPE dbhist_test_export_latency_ns histogram"));
        assert!(prom.contains("dbhist_test_export_latency_ns_bucket{le=\"+Inf\"} 4"));
        assert!(prom.contains("dbhist_test_export_latency_ns_sum 100110"));
        assert!(prom.contains("dbhist_test_export_latency_ns_count 4"));
        // Cumulative counts are non-decreasing.
        let mut last = 0u64;
        for line in prom.lines().filter(|l| l.contains("_bucket{le=")) {
            let count: u64 = line.rsplit(' ').next().and_then(|n| n.parse().ok()).unwrap_or(0);
            assert!(count >= last, "cumulative bucket counts must not decrease: {line}");
            last = count;
        }
    }

    #[test]
    fn exporters_agree_on_the_same_snapshot() {
        let snap = sample();
        let json = to_json(&snap);
        let prom = to_prometheus(&snap);
        for m in &snap.metrics {
            let (base, _) = split_labels(&m.name);
            assert!(json.contains(base), "JSON missing {base}");
            assert!(prom.contains(base), "Prometheus missing {base}");
        }
    }
}
