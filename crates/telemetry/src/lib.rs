//! Observability for the dbhist synopsis engine: a lock-free metrics
//! registry, RAII span tracing, accuracy-drift monitoring, and snapshot
//! exporters (JSON and Prometheus text format).
//!
//! The design follows the metriken/rustcommon metrics stack: recording on
//! hot paths touches only atomics with `Relaxed` ordering (wait-free), and
//! the registry's single mutex guards *registration and snapshotting*
//! only — never the per-metric update path.
//!
//! # The pieces
//!
//! * [`registry`] — [`Counter`], [`Gauge`], and [`LatencyHistogram`]
//!   (base-2 sub-bucketed, dogfooding the repo's own
//!   [`dbhist_histogram::OneDimHistogram`] as its snapshot
//!   representation), plus the process-wide [`Registry`] and the global
//!   [`enabled`] switch.
//! * [`span`] — the [`span!`] macro: an RAII guard that times a lexical
//!   scope, maintains a thread-local span *stack* (so nested spans know
//!   their depth), and records into the registry. With telemetry disabled
//!   and no collector installed, entering a span is two relaxed atomic
//!   loads and no clock read — effectively free.
//! * [`drift`] — [`DriftMonitor`]: rolling absolute-relative-error
//!   windows *and* full error distributions per model clique, fed by
//!   observed cardinalities, exposed as per-clique drift and
//!   error-quantile gauges that maintenance policies consult.
//! * [`journal`] — a bounded, mostly-lock-free ring of typed engine
//!   events (sampled query explains, generation swaps, rebuilds, drift
//!   trips, cache evictions) drained as JSONL by the observability
//!   endpoint.
//! * [`export`] — [`export::to_json`] and [`export::to_prometheus`]
//!   render the same [`Snapshot`].
//! * [`wellknown`] — pre-registered handles for every `dbhist_*` metric
//!   the engine emits, so hot paths never hash a metric name.
//!
//! # Naming convention
//!
//! Every metric is named `dbhist_<subsystem>_<name>_<unit>` (for example
//! `dbhist_query_plan_cache_hits_total`,
//! `dbhist_query_estimate_latency_ns`); `cargo run -p xtask -- lint`
//! enforces the convention on every literal in library code.
//!
//! # Example
//!
//! ```
//! use dbhist_telemetry as telemetry;
//!
//! telemetry::set_enabled(true);
//! let queries = telemetry::global().counter("dbhist_query_estimates_total");
//! queries.increment();
//! {
//!     let _span = telemetry::span!("dbhist_query_estimate_latency_ns");
//!     // ... timed work ...
//! }
//! let snapshot = telemetry::snapshot();
//! assert_eq!(snapshot.counter("dbhist_query_estimates_total"), Some(1));
//! println!("{}", telemetry::export::to_prometheus(&snapshot));
//! telemetry::set_enabled(false);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod drift;
pub mod export;
pub mod journal;
pub mod registry;
pub mod span;
pub mod wellknown;

pub use drift::DriftMonitor;
pub use journal::{journal, Journal, JournalEvent};
pub use registry::{
    enabled, global, set_enabled, snapshot, Counter, Gauge, HistogramSnapshot, LatencyHistogram,
    MetricSnapshot, MetricValue, Registry, Snapshot,
};
pub use span::{SpanCollector, SpanGuard, SpanMeter, SpanRecord};

/// Serializes tests that flip the process-wide [`enabled`] flag.
#[cfg(test)]
pub(crate) mod test_support {
    use std::sync::{Mutex, MutexGuard, PoisonError};

    pub fn enabled_flag_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }
}
