//! RAII span tracing with thread-local span stacks.
//!
//! The [`crate::span!`] macro times a lexical scope:
//!
//! ```
//! # fn compute() {}
//! {
//!     let _span = dbhist_telemetry::span!("dbhist_query_estimate_latency_ns");
//!     compute(); // timed while `_span` is live
//! } // duration recorded here
//! ```
//!
//! Each call site lazily registers one [`SpanMeter`] (a latency histogram
//! plus a call counter) in the global registry, so repeated entries never
//! hash a metric name. While a span is live its name sits on a
//! thread-local *stack*, so nested spans know their depth and
//! [`current_span`] identifies what the thread is doing.
//!
//! Spans are **zero-cost when inert**: if global telemetry is disabled
//! (see [`crate::set_enabled`]) and no [`SpanCollector`] is installed on
//! the thread, entering a span performs one relaxed atomic load plus one
//! thread-local read and never touches the clock.
//!
//! [`SpanCollector`] is the subscriber used to *derive* traces: install
//! one, run an instrumented region, and [`SpanCollector::finish`] returns
//! every span the thread completed, with durations and nesting depths.
//! The core crate rebuilds `BuildTrace` from exactly this stream.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::registry::{self, Counter, LatencyHistogram};

thread_local! {
    /// Names of the spans currently live on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    /// Completed-span sink, when a [`SpanCollector`] is installed.
    static COLLECTOR: RefCell<Option<Vec<SpanRecord>>> = const { RefCell::new(None) };
}

/// The per-call-site instruments behind one [`crate::span!`] site: a
/// latency histogram named after the span and a derived
/// `<base>_spans_total` call counter.
#[derive(Debug)]
pub struct SpanMeter {
    name: &'static str,
    micros: bool,
    latency: Arc<LatencyHistogram>,
    calls: Arc<Counter>,
}

impl SpanMeter {
    /// Registers the meter for `name` in the global registry. The span
    /// duration unit follows the name's suffix: `_us` records
    /// microseconds, anything else nanoseconds (use `_ns`). The derived
    /// call counter drops a trailing `_latency_<unit>` before appending
    /// `_spans_total`.
    #[must_use]
    pub fn register(name: &'static str) -> Self {
        let base = name
            .strip_suffix("_latency_ns")
            .or_else(|| name.strip_suffix("_latency_us"))
            .unwrap_or(name);
        Self {
            name,
            micros: name.ends_with("_us"),
            latency: registry::global().histogram(name),
            calls: registry::global().counter(&format!("{base}_spans_total")),
        }
    }

    /// The span (and histogram) name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn record(&self, elapsed: Duration) {
        let raw = if self.micros { elapsed.as_micros() } else { elapsed.as_nanos() };
        self.latency.record(u64::try_from(raw).unwrap_or(u64::MAX));
        self.calls.increment();
    }
}

/// One completed span, as seen by a [`SpanCollector`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (the literal passed to [`crate::span!`]).
    pub name: &'static str,
    /// Nesting depth at completion: `0` for a top-level span.
    pub depth: usize,
    /// Wall-clock time the span was live.
    pub duration: Duration,
}

/// RAII guard produced by [`crate::span!`]. Dropping it records the
/// elapsed time into the meter's histogram (when global telemetry is
/// enabled) and into the thread's [`SpanCollector`] (when one is
/// installed).
#[derive(Debug)]
#[must_use = "a span guard times its enclosing scope; dropping it immediately records ~0"]
pub struct SpanGuard {
    active: Option<(&'static SpanMeter, Instant)>,
}

impl SpanGuard {
    /// Enters a span. Inert (no clock read, no stack push) unless global
    /// telemetry is enabled or this thread has a collector installed.
    pub fn enter(meter: &'static SpanMeter) -> Self {
        if !registry::enabled() && !collector_installed() {
            return Self { active: None };
        }
        SPAN_STACK.with(|s| s.borrow_mut().push(meter.name));
        Self { active: Some((meter, Instant::now())) }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((meter, start)) = self.active.take() else { return };
        let elapsed = start.elapsed();
        let depth = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            stack.pop();
            stack.len()
        });
        if registry::enabled() {
            meter.record(elapsed);
        }
        COLLECTOR.with(|c| {
            if let Some(records) = c.borrow_mut().as_mut() {
                records.push(SpanRecord { name: meter.name, depth, duration: elapsed });
            }
        });
    }
}

/// The innermost live span on this thread, if any.
#[must_use]
pub fn current_span() -> Option<&'static str> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

/// Number of live spans on this thread.
#[must_use]
pub fn span_depth() -> usize {
    SPAN_STACK.with(|s| s.borrow().len())
}

fn collector_installed() -> bool {
    COLLECTOR.with(|c| c.borrow().is_some())
}

/// A thread-local subscriber that captures every span completed on this
/// thread between [`SpanCollector::install`] and
/// [`SpanCollector::finish`] (or drop). Installing a collector activates
/// spans on this thread even when global telemetry is disabled — this is
/// how build-time traces stay exact without turning on process-wide
/// metrics. Not re-entrant: installing a second collector on the same
/// thread replaces the first.
#[derive(Debug)]
pub struct SpanCollector {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl SpanCollector {
    /// Starts collecting completed spans on the current thread.
    #[must_use]
    pub fn install() -> Self {
        COLLECTOR.with(|c| *c.borrow_mut() = Some(Vec::new()));
        Self { _not_send: std::marker::PhantomData }
    }

    /// Stops collecting and returns the completed spans in completion
    /// order (inner spans precede the outer spans that contain them).
    #[must_use]
    pub fn finish(self) -> Vec<SpanRecord> {
        COLLECTOR.with(|c| c.borrow_mut().take()).unwrap_or_default()
    }
}

impl Drop for SpanCollector {
    fn drop(&mut self) {
        COLLECTOR.with(|c| {
            c.borrow_mut().take();
        });
    }
}

/// Times the enclosing lexical scope under the given metric name.
///
/// Expands to a [`SpanGuard`] whose [`SpanMeter`] is registered once per
/// call site (in a local `static`). Bind it to a named `_`-prefixed
/// variable — `let _span = span!("...")` — so it lives to the end of the
/// scope; a bare `span!(...)` statement would drop immediately.
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static METER: ::std::sync::OnceLock<$crate::span::SpanMeter> = ::std::sync::OnceLock::new();
        $crate::span::SpanGuard::enter(
            METER.get_or_init(|| $crate::span::SpanMeter::register($name)),
        )
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_without_subscriber() {
        let _serial = crate::test_support::enabled_flag_lock();
        registry::set_enabled(false);
        {
            let _span = crate::span!("dbhist_test_inert_latency_ns");
            assert_eq!(span_depth(), 0, "inert spans never touch the stack");
            assert_eq!(current_span(), None);
        }
    }

    #[test]
    fn collector_captures_nesting_and_durations() {
        let collector = SpanCollector::install();
        {
            let _outer = crate::span!("dbhist_test_outer_latency_ns");
            assert_eq!(current_span(), Some("dbhist_test_outer_latency_ns"));
            {
                let _inner = crate::span!("dbhist_test_inner_latency_ns");
                assert_eq!(span_depth(), 2);
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let records = collector.finish();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].name, "dbhist_test_inner_latency_ns");
        assert_eq!(records[0].depth, 1);
        assert_eq!(records[1].name, "dbhist_test_outer_latency_ns");
        assert_eq!(records[1].depth, 0);
        assert!(records[1].duration >= records[0].duration, "outer contains inner");
        assert!(records[0].duration >= Duration::from_millis(1));
        assert_eq!(span_depth(), 0);
    }

    #[test]
    fn enabled_spans_record_into_registry() {
        let _serial = crate::test_support::enabled_flag_lock();
        registry::set_enabled(true);
        {
            let _span = crate::span!("dbhist_test_recorded_latency_ns");
        }
        registry::set_enabled(false);
        let snap = registry::snapshot();
        let calls = snap.counter("dbhist_test_recorded_spans_total").unwrap_or(0);
        assert!(calls >= 1, "span call counter must tick");
        let hist = snap.histogram("dbhist_test_recorded_latency_ns");
        assert!(hist.is_some_and(|h| h.count >= 1), "span latency must be recorded");
    }

    #[test]
    fn dropped_collector_uninstalls() {
        {
            let _collector = SpanCollector::install();
            let _span = crate::span!("dbhist_test_dropped_latency_ns");
        }
        assert!(!collector_installed());
    }

    #[test]
    fn microsecond_suffix_selects_unit() {
        let meter = SpanMeter::register("dbhist_test_unit_latency_us");
        assert!(meter.micros);
        meter.record(Duration::from_millis(3));
        let snap = meter.latency.snapshot();
        let p50 = snap.percentile(50.0).unwrap_or(0.0);
        assert!((2_900.0..=3_200.0).contains(&p50), "3 ms must record ~3000 us, got {p50}");
    }
}
