//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crate registry, so the workspace vendors a
//! minimal wall-clock benchmarking harness exposing the `criterion 0.5`
//! surface the `crates/bench` targets use (see `[patch.crates-io]` in the
//! workspace `Cargo.toml`). It runs each benchmark a fixed number of
//! iterations, reports mean wall-clock time to stderr, and performs no
//! statistical analysis — adequate for "does it run, roughly how fast",
//! not for publication-grade measurements.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value, mirroring
/// `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part `function/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Per-benchmark timing driver, mirroring `criterion::Bencher`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then timed iterations.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; the stand-in has no fixed time budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the stand-in has no warm-up budget.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { iters: self.sample_size as u64, elapsed: Duration::ZERO };
        f(&mut b);
        self.criterion.report(&self.name, &id.id, &b);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher { iters: self.sample_size as u64, elapsed: Duration::ZERO };
        f(&mut b, input);
        self.criterion.report(&self.name, &id.id, &b);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark manager, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Accepted for compatibility; CLI flags are ignored.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 100 }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { iters: 100, elapsed: Duration::ZERO };
        f(&mut b);
        self.report("bench", &id.id, &b);
        self
    }

    /// Prints the closing line.
    pub fn final_summary(&self) {
        eprintln!("criterion(stand-in): {} benchmarks timed", self.benchmarks_run);
    }

    fn report(&mut self, group: &str, id: &str, b: &Bencher) {
        self.benchmarks_run += 1;
        let per_iter = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
        eprintln!(
            "criterion(stand-in) {group}/{id}: {:.3} ms/iter ({} iters)",
            per_iter * 1e3,
            b.iters
        );
    }
}

/// Bundles benchmark functions into one runner fn, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Generates a `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().configure_from_args().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_time_and_count() {
        let mut c = Criterion::default().configure_from_args();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
            g.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        assert_eq!(c.benchmarks_run, 2);
        c.final_summary();
    }
}
