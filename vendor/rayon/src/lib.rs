//! Offline stand-in for the `rayon` crate.
//!
//! The build container has no access to a crate registry, so the workspace
//! vendors a minimal, dependency-free implementation of the `rayon 1.x`
//! API surface it actually uses (see `[patch.crates-io]` in the workspace
//! `Cargo.toml`). Instead of a persistent work-stealing pool, every
//! terminal operation (`collect`, `for_each`, ...) splits its input into
//! one contiguous chunk per worker and runs the chunks on
//! [`std::thread::scope`] threads, reassembling results in input order.
//!
//! Guarantees relied on by the workspace:
//!
//! * **Order preservation** — `collect()` returns results in the same
//!   order as the input, regardless of worker interleaving.
//! * **Determinism** — each item is processed independently by the given
//!   closure; no reduction reorders floating-point operations.
//! * **Degraded serial path** — with one effective thread (or one item)
//!   the items are processed inline on the calling thread, with no
//!   spawning, in exactly the order a sequential `Iterator` would use.
//!
//! Differences from upstream rayon (acceptable for this workspace): no
//! work stealing (long-tail chunks are not rebalanced), no nested-pool
//! inheritance (a worker thread sees the global default, not the
//! installing pool), and `ThreadPool::install` scopes the thread count via
//! a thread-local rather than moving work onto pool-owned threads.

use std::cell::Cell;
use std::fmt;

pub mod prelude {
    //! The traits a `use rayon::prelude::*` is expected to bring in.
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator,
    };
}

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads terminal operations will use on this thread:
/// the innermost [`ThreadPool::install`] override, or the machine's
/// available parallelism.
#[must_use]
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS.with(|c| c.get()).unwrap_or_else(default_num_threads)
}

fn default_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Error type returned by [`ThreadPoolBuilder::build`]. The stand-in
/// cannot fail to "build" a pool; the type exists for API compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`], mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default configuration.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count. As with upstream rayon, `0` means "use the
    /// default" (available parallelism).
    #[must_use]
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = Some(num_threads);
        self
    }

    /// Builds the pool. Never fails in the stand-in.
    ///
    /// # Errors
    ///
    /// None in practice; the signature mirrors upstream rayon.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = match self.num_threads {
            None | Some(0) => default_num_threads(),
            Some(n) => n,
        };
        Ok(ThreadPool { threads })
    }
}

/// A "pool" that scopes the worker count for terminal operations run
/// under [`ThreadPool::install`].
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Worker count this pool was built with.
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `op` with this pool's thread count governing every parallel
    /// terminal operation it performs (on this thread). Restores the
    /// previous override on exit, even on panic.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(INSTALLED_THREADS.with(|c| c.replace(Some(self.threads))));
        op()
    }
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB,
    RA: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        (ra, b())
    } else {
        std::thread::scope(|s| {
            let ha = s.spawn(a);
            let rb = b();
            (join_handle(ha), rb)
        })
    }
}

/// Joins a scoped handle, propagating a worker panic to the caller.
fn join_handle<'s, T>(handle: std::thread::ScopedJoinHandle<'s, T>) -> T {
    match handle.join() {
        Ok(value) => value,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Maps `items` through `f` on up to `threads` scoped workers, preserving
/// input order. The workhorse behind every terminal operation.
fn parallel_map_vec<T, R, F>(items: Vec<T>, f: &F, threads: usize) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = threads.min(n);
    let chunk_len = n.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut rest = items;
    while rest.len() > chunk_len {
        let tail = rest.split_off(chunk_len);
        chunks.push(rest);
        rest = tail;
    }
    chunks.push(rest);
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            out.extend(join_handle(h));
        }
        out
    })
}

/// A parallel iterator: a chain of combinators over an eagerly
/// materialized item list, executed by a terminal operation.
pub trait ParallelIterator: Sized + Send {
    /// The element type.
    type Item: Send;

    /// Executes the chain with `threads` workers, returning the results in
    /// input order. Implementation detail of the terminal operations;
    /// user code should call `collect`/`for_each` instead.
    fn drive(self, threads: usize) -> Vec<Self::Item>;

    /// Transforms each element with `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Keeps the `Some` results of `f`, preserving input order.
    fn filter_map<R, F>(self, f: F) -> FilterMap<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> Option<R> + Sync + Send,
    {
        FilterMap { base: self, f }
    }

    /// Applies `f` to every element.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let threads = current_num_threads();
        let mapped: Vec<()> = Map { base: self, f: |item| f(item) }.drive(threads);
        drop(mapped);
    }

    /// Collects the results, preserving input order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        let threads = current_num_threads();
        C::from_ordered_items(self.drive(threads))
    }

    /// Number of items the chain would produce.
    fn count(self) -> usize {
        let threads = current_num_threads();
        self.drive(threads).len()
    }
}

/// Conversion into a [`ParallelIterator`], mirroring rayon's trait.
pub trait IntoParallelIterator {
    /// The concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type.
    type Item: Send;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter()` — by-reference parallel iteration.
pub trait IntoParallelRefIterator<'data> {
    /// The concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type (`&'data T`).
    type Item: Send + 'data;

    /// Iterates over `&self` in parallel.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
where
    &'data I: IntoParallelIterator,
{
    type Iter = <&'data I as IntoParallelIterator>::Iter;
    type Item = <&'data I as IntoParallelIterator>::Item;

    fn par_iter(&'data self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// `par_iter_mut()` — by-mutable-reference parallel iteration.
pub trait IntoParallelRefMutIterator<'data> {
    /// The concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type (`&'data mut T`).
    type Item: Send + 'data;

    /// Iterates over `&mut self` in parallel.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefMutIterator<'data> for I
where
    &'data mut I: IntoParallelIterator,
{
    type Iter = <&'data mut I as IntoParallelIterator>::Iter;
    type Item = <&'data mut I as IntoParallelIterator>::Item;

    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// Parallel iterator over an owned item list.
pub struct VecParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;

    fn drive(self, _threads: usize) -> Vec<T> {
        // The base produces its items as-is; combinators above it fan the
        // per-item work out to threads.
        self.items
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecParIter<T>;
    type Item = T;

    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

impl<'data, T: Sync> IntoParallelIterator for &'data [T] {
    type Iter = VecParIter<&'data T>;
    type Item = &'data T;

    fn into_par_iter(self) -> VecParIter<&'data T> {
        VecParIter { items: self.iter().collect() }
    }
}

impl<'data, T: Sync> IntoParallelIterator for &'data Vec<T> {
    type Iter = VecParIter<&'data T>;
    type Item = &'data T;

    fn into_par_iter(self) -> VecParIter<&'data T> {
        VecParIter { items: self.iter().collect() }
    }
}

impl<'data, T: Send> IntoParallelIterator for &'data mut [T] {
    type Iter = VecParIter<&'data mut T>;
    type Item = &'data mut T;

    fn into_par_iter(self) -> VecParIter<&'data mut T> {
        VecParIter { items: self.iter_mut().collect() }
    }
}

impl<'data, T: Send> IntoParallelIterator for &'data mut Vec<T> {
    type Iter = VecParIter<&'data mut T>;
    type Item = &'data mut T;

    fn into_par_iter(self) -> VecParIter<&'data mut T> {
        VecParIter { items: self.iter_mut().collect() }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = VecParIter<usize>;
    type Item = usize;

    fn into_par_iter(self) -> VecParIter<usize> {
        VecParIter { items: self.collect() }
    }
}

/// The result of [`ParallelIterator::map`].
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send,
{
    type Item = R;

    fn drive(self, threads: usize) -> Vec<R> {
        let Self { base, f } = self;
        parallel_map_vec(base.drive(threads), &f, threads)
    }
}

/// The result of [`ParallelIterator::filter_map`].
pub struct FilterMap<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for FilterMap<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> Option<R> + Sync + Send,
{
    type Item = R;

    fn drive(self, threads: usize) -> Vec<R> {
        let Self { base, f } = self;
        parallel_map_vec(base.drive(threads), &f, threads).into_iter().flatten().collect()
    }
}

/// Collection from an ordered parallel computation, mirroring rayon's
/// `FromParallelIterator` for the shapes the workspace uses.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds the collection from items already in input order.
    fn from_ordered_items(items: Vec<T>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_items(items: Vec<T>) -> Self {
        items
    }
}

impl<T, E, C> FromParallelIterator<Result<T, E>> for Result<C, E>
where
    T: Send,
    E: Send,
    C: FromParallelIterator<T>,
{
    fn from_ordered_items(items: Vec<Result<T, E>>) -> Self {
        let mut ok = Vec::with_capacity(items.len());
        for item in items {
            ok.push(item?);
        }
        Ok(C::from_ordered_items(ok))
    }
}

impl<T, C> FromParallelIterator<Option<T>> for Option<C>
where
    T: Send,
    C: FromParallelIterator<T>,
{
    fn from_ordered_items(items: Vec<Option<T>>) -> Self {
        let mut ok = Vec::with_capacity(items.len());
        for item in items {
            ok.push(item?);
        }
        Some(C::from_ordered_items(ok))
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = input.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 4, 7] {
            let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let out: Vec<u64> = pool.install(|| input.par_iter().map(|&x| x * 3 + 1).collect());
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn collect_into_result_short_circuits_to_first_error() {
        let input: Vec<u32> = (0..100).collect();
        let out: Result<Vec<u32>, String> = input
            .par_iter()
            .map(|&x| if x == 41 || x == 97 { Err(format!("bad {x}")) } else { Ok(x) })
            .collect();
        assert_eq!(out, Err("bad 41".to_string()));
        let ok: Result<Vec<u32>, String> = input.par_iter().map(|&x| Ok(x)).collect();
        assert_eq!(ok.unwrap().len(), 100);
    }

    #[test]
    fn par_iter_mut_sees_every_element() {
        let mut data: Vec<u32> = (0..257).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| data.par_iter_mut().for_each(|x| *x += 1));
        assert!(data.iter().enumerate().all(|(i, &x)| x == i as u32 + 1));
    }

    #[test]
    fn install_scopes_thread_count_and_restores() {
        let outer = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 7));
        assert_eq!(current_num_threads(), outer);
        // num_threads(0) means "default", as with upstream rayon.
        let dflt = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(dflt.current_num_threads() >= 1);
    }

    #[test]
    fn single_item_and_empty_inputs() {
        let one: Vec<u32> = vec![7].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
        let none: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x + 1).collect();
        assert!(none.is_empty());
    }

    #[test]
    fn filter_map_and_range_and_count() {
        let evens: Vec<usize> =
            (0..50usize).into_par_iter().filter_map(|x| (x % 2 == 0).then_some(x)).collect();
        assert_eq!(evens.len(), 25);
        assert_eq!(evens[3], 6);
        assert_eq!((0..17usize).into_par_iter().count(), 17);
    }

    #[test]
    fn join_runs_both_sides() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }

    #[test]
    fn worker_panic_propagates() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let result = std::panic::catch_unwind(|| {
            pool.install(|| {
                let v: Vec<u32> = (0..64usize)
                    .into_par_iter()
                    .map(|x| if x == 63 { panic!("boom") } else { 0 })
                    .collect();
                v
            })
        });
        assert!(result.is_err());
    }
}
