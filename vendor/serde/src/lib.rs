//! Offline resolution-only stand-in for `serde`.
//!
//! The workspace's optional `serde` feature is OFF by default and the build
//! container has no crate registry, so this crate exists purely to satisfy
//! dependency resolution (see `[patch.crates-io]` in the workspace
//! `Cargo.toml`). It intentionally provides **no** derive macros or traits:
//! enabling the workspace `serde` feature against this stand-in is a
//! compile error, which is the honest behaviour — serialization support
//! requires the real crate.
