//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crate registry, so the workspace vendors a
//! minimal property-testing framework exposing the subset of the
//! `proptest 1.x` surface the test suites use: the [`proptest!`] macro,
//! [`prop_assert!`]/[`prop_assert_eq!`], [`strategy::Strategy`] with
//! `prop_map`, range and tuple strategies, [`arbitrary::any`], and
//! [`collection::vec`]. See `[patch.crates-io]` in the workspace
//! `Cargo.toml`.
//!
//! Differences from upstream, by design:
//!
//! * Cases are generated from a deterministic per-test seed — every run
//!   explores the same inputs, so failures always reproduce.
//! * There is no shrinking; the panic message reports the case index.
//! * `*.proptest-regressions` files are **not** replayed (their `cc` lines
//!   hash upstream's RNG state). Regressions worth pinning must be
//!   duplicated as plain `#[test]` cases — this repo does so (see
//!   `tests/codec_negative.rs`).

pub mod test_runner {
    //! Deterministic case generation.

    /// Run configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// SplitMix64 generator seeded from the test name: deterministic per
    /// test, different across tests.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds the generator for the named test.
        #[must_use]
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the test name diversifies streams across tests.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// The next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`.
        ///
        /// # Panics
        ///
        /// Panics if `bound` is zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sampling bound");
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`, mirroring
        /// `proptest::strategy::Strategy::prop_map`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (u128::from(rng.next_u64()) % span) as i128;
                    (self.start as i128 + offset) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = (u128::from(rng.next_u64()) % span) as i128;
                    (lo as i128 + offset) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    //! `any::<T>()` support for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `A`, mirroring `proptest::prelude::any`.
    #[must_use]
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + usize::try_from(rng.below(span)).unwrap_or(0);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with the given element strategy and length range,
    /// mirroring `proptest::collection::vec`.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Each function runs `config.cases` deterministic
/// cases; `prop_assert*` failures abort the case with a panic naming the
/// case index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let result: ::core::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(msg) = result {
                        ::core::panic!(
                            "proptest '{}' case {} failed: {}",
                            stringify!($name),
                            case,
                            msg
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// the process) so the harness can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {:?} == {:?}",
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {:?} == {:?}: {}",
                left,
                right,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {:?} != {:?}",
                left,
                right
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..5, z in any::<u8>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
            let _ = z;
        }

        #[test]
        fn tuples_and_map_compose(v in (1u32..4, 1u32..4).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..=9).contains(&v), "got {v}");
        }

        #[test]
        fn vec_strategy_respects_size(bytes in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(bytes.len() >= 2 && bytes.len() < 6);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "case 0 failed")]
    fn failures_name_the_case() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            #[allow(unused)]
            fn always_fails(x in 0u32..2) {
                prop_assert!(x > 10, "x was {x}");
            }
        }
        always_fails();
    }
}
