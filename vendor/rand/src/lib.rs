//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to a crate registry, so the workspace
//! vendors a minimal, dependency-free implementation of the `rand 0.8` API
//! surface it actually uses (see `[patch.crates-io]` in the workspace
//! `Cargo.toml`). The generator is a SplitMix64 stream — deterministic,
//! seedable, and statistically adequate for synthetic data generation and
//! tests, but **not** a drop-in bit-for-bit replacement for upstream
//! `StdRng` and not cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> mantissa precision, exactly as upstream rand does.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types with a uniform sampling routine. The blanket [`SampleRange`]
/// impls below hang off this trait so that untyped integer literals in
/// `gen_range(0..5)` unify with the surrounding expression's type, exactly
/// as with upstream rand.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + offset) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "cannot sample from empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        Self::sample_half_open(rng, lo, hi)
    }
}

/// A range that knows how to draw a uniform sample from itself.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    ///
    /// The output stream differs from upstream `StdRng` (which is ChaCha12);
    /// callers must not rely on cross-implementation reproducibility, only on
    /// same-binary determinism per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix so that small consecutive seeds give unrelated streams.
            let mut rng = StdRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 };
            let _ = rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): passes BigCrush, one u64 state.
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    //! Sequence-related sampling, mirroring `rand::seq`.

    use super::{Rng, RngCore};

    /// Slice sampling extensions.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Chooses `amount` distinct elements uniformly (fewer if the slice
        /// is shorter), in random order.
        fn choose_multiple<R: RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Chooses one element uniformly, or `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose_multiple<R: RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index table.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx[..amount].iter().map(|&i| &self[i]).collect::<Vec<_>>().into_iter()
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100).filter(|_| a.gen_range(0u32..1000) == c.gen_range(0u32..1000)).count();
        assert!(same < 10, "different seeds must give different streams");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn choose_multiple_distinct() {
        let mut rng = StdRng::seed_from_u64(5);
        let items: Vec<u32> = (0..20).collect();
        let picked: Vec<u32> = items.choose_multiple(&mut rng, 8).copied().collect();
        assert_eq!(picked.len(), 8);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "choices must be distinct");
    }
}
