//! # dbhist — Dependency-Based Histogram Synopses
//!
//! A Rust implementation of *"Independence is Good: Dependency-Based
//! Histogram Synopses for High-Dimensional Data"* (Amol Deshpande, Minos
//! Garofalakis, Rajeev Rastogi; ACM SIGMOD 2001).
//!
//! A DEPENDENCY-BASED (DB) histogram approximates the joint frequency
//! distribution of a high-dimensional table with a pair `<M, C>`:
//!
//! * `M` — a *decomposable statistical interaction model* capturing the
//!   partial- and conditional-independence patterns in the data, and
//! * `C` — a collection of low-dimensional *clique histograms* on the
//!   marginals dictated by the model's generators.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`distribution`] — joint frequency distributions, marginals, entropy,
//!   KL divergence.
//! * [`model`] — chordal Markov graphs, junction trees, decomposable models,
//!   forward selection (`DB₁`/`DB₂` heuristics), χ² significance testing.
//! * [`histogram`] — MaxDiff/V-Optimal one-dimensional histograms, MHIST
//!   split trees with `project`/`product`/`restrictNode`, grid histograms.
//! * [`core`] — the DB-histogram synopsis, storage allocation (optimal DP
//!   and IncrementalGains), `ComputeMarginal`, and the IND / MHIST /
//!   sampling baselines.
//! * [`persist`] — the versioned, checksummed snapshot format: save a
//!   built synopsis to disk and reload it bit-identically without
//!   re-deriving model structure (`Synopsis::save` / `Synopsis::load`).
//! * [`data`] — synthetic Census-like and housing data sets, range-query
//!   workloads, and the paper's error metrics.
//! * [`telemetry`] — the process-wide observability layer: lock-free
//!   metrics registry, span tracing, accuracy-drift monitoring, and
//!   JSON / Prometheus-text exporters.
//!
//! See `README.md` for a quickstart and `EXPERIMENTS.md` for the
//! reproduction of every evaluation figure.

#![forbid(unsafe_code)]

pub use dbhist_core as core;
pub use dbhist_data as data;
pub use dbhist_distribution as distribution;
pub use dbhist_histogram as histogram;
pub use dbhist_model as model;
pub use dbhist_persist as persist;
pub use dbhist_telemetry as telemetry;
