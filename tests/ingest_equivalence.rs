//! Property tests for streaming ingest: batched `IngestSession` updates
//! are bit-identical to one-shot application of the same tuple stream,
//! crash recovery from snapshot + WAL restores the same bit patterns,
//! and WAL corruption is always detected and typed — a prefix of a
//! valid log either replays cleanly or errors, never silently diverges.

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests assert by panicking

use dbhist::core::ingest::{IngestConfig, IngestSession};
use dbhist::core::maintenance::MaintainedDbHistogram;
use dbhist::core::synopsis::DbConfig;
use dbhist::core::{Query, SelectivityEstimator};
use dbhist::distribution::{Relation, Schema};
use dbhist::persist::wal::{self, WalOp};
use dbhist::persist::PersistError;
use proptest::prelude::*;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// A correlated 4-attribute relation: a0 ≈ a1, a2/a3 independent.
fn seed_relation(rows: usize, domain: u32, seed: u64) -> Relation {
    let mut state = seed | 1;
    let schema = Schema::new((0..4).map(|i| (format!("a{i}"), domain))).unwrap();
    let data: Vec<Vec<u32>> = (0..rows)
        .map(|_| {
            let base = (xorshift(&mut state) % u64::from(domain)) as u32;
            vec![
                base,
                if xorshift(&mut state).is_multiple_of(4) {
                    (xorshift(&mut state) % u64::from(domain)) as u32
                } else {
                    base
                },
                (xorshift(&mut state) % u64::from(domain)) as u32,
                (xorshift(&mut state) % u64::from(domain)) as u32,
            ]
        })
        .collect();
    Relation::from_rows(schema, data).unwrap()
}

/// A deterministic op stream over the seeded multiset: deletes only
/// ever target a row still present (seeded or previously inserted), so
/// the net multiset — and thus every marginal count — stays exact.
fn op_stream(rel: &Relation, count: usize, domain: u32, seed: u64) -> Vec<WalOp> {
    let mut state = seed | 1;
    let mut available: Vec<Vec<u32>> = rel.rows().map(<[u32]>::to_vec).collect();
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        let delete = xorshift(&mut state) % 4 < 2 && !available.is_empty();
        if delete {
            let idx = (xorshift(&mut state) as usize) % available.len();
            ops.push(WalOp::Delete(available.swap_remove(idx)));
        } else {
            let row: Vec<u32> =
                (0..4).map(|_| (xorshift(&mut state) % u64::from(domain)) as u32).collect();
            available.push(row.clone());
            ops.push(WalOp::Insert(row));
        }
    }
    ops
}

fn probe_queries(domain: u32) -> Vec<Query> {
    let hi = domain.saturating_sub(1);
    vec![
        Query::all(),
        Query::range(0, 0, hi / 2),
        Query::range(1, hi / 3, hi),
        Query::equals(2, hi / 2),
        Query::range(3, 0, hi),
    ]
}

fn bit_patterns(est: &impl SelectivityEstimator, queries: &[Query]) -> Vec<u64> {
    queries.iter().map(|q| est.estimate(q).to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Batched ingest ≡ one-shot updates, and the maintained per-clique
    /// marginals ≡ marginals a fresh scan of the final multiset would
    /// produce — both at the bit level.
    #[test]
    fn batched_ingest_matches_one_shot(
        rows in 256usize..1024,
        domain in 4u32..12,
        n_ops in 32usize..300,
        batch in 1usize..48,
        seed in any::<u64>(),
    ) {
        let rel = seed_relation(rows, domain, seed);
        let built = MaintainedDbHistogram::build(&rel, DbConfig::new(700)).unwrap();
        let mut one_shot = built.clone();
        let mut session = IngestSession::begin(built, &rel, IngestConfig::default()).unwrap();
        let ops = op_stream(&rel, n_ops, domain, seed ^ 0xDEAD_BEEF);
        for chunk in ops.chunks(batch) {
            session.apply_batch(chunk).unwrap();
        }
        for op in &ops {
            match op {
                WalOp::Insert(row) => one_shot.insert(row),
                WalOp::Delete(row) => one_shot.delete(row),
            }
        }
        let queries = probe_queries(domain);
        prop_assert_eq!(
            bit_patterns(session.estimator(), &queries),
            bit_patterns(&one_shot, &queries),
            "batch partitioning must not change any estimate bit"
        );

        // Maintained marginals vs a fresh scan of the final multiset.
        // (Deletes can leave zero/negative cells resident in the tracked
        // marginal; compare frequencies, which agree cell-by-cell.)
        if session.marginals_tracked() {
            let mut final_rows: Vec<Vec<u32>> = rel.rows().map(<[u32]>::to_vec).collect();
            for op in &ops {
                match op {
                    WalOp::Insert(row) => final_rows.push(row.clone()),
                    WalOp::Delete(row) => {
                        if let Some(pos) = final_rows.iter().position(|r| r == row) {
                            final_rows.swap_remove(pos);
                        }
                    }
                }
            }
            let final_rel = Relation::from_rows(rel.schema().clone(), final_rows).unwrap();
            let cliques = session.estimator().synopsis().model().cliques().to_vec();
            for (i, clique) in cliques.iter().enumerate() {
                let fresh = final_rel.marginal(clique).unwrap();
                let tracked = session.marginal(i).unwrap();
                for (key, w) in fresh.iter() {
                    prop_assert_eq!(
                        tracked.frequency(key).to_bits(),
                        w.to_bits(),
                        "clique {} cell {:?}", i, key
                    );
                }
                // Cells the fresh scan lacks must have net-zero mass.
                for (key, w) in tracked.iter() {
                    if fresh.frequency(key) == 0.0 {
                        prop_assert!(w.abs() < 1e-9, "clique {} ghost cell {:?} = {}", i, key, w);
                    }
                }
            }
        }
    }

    /// Crash recovery (snapshot at session start + full WAL tail) is
    /// bit-identical to the uninterrupted session.
    #[test]
    fn recovery_is_bit_identical(
        rows in 256usize..768,
        domain in 4u32..10,
        n_ops in 16usize..160,
        batch in 1usize..32,
        seed in any::<u64>(),
    ) {
        let dir = std::env::temp_dir();
        let tag = format!("{}-{seed:x}", std::process::id());
        let snap = dir.join(format!("dbhist-eqv-{tag}.dbhs"));
        let walp = dir.join(format!("dbhist-eqv-{tag}.wal"));
        let rel = seed_relation(rows, domain, seed);
        let built = MaintainedDbHistogram::build(&rel, DbConfig::new(700)).unwrap();
        let mut session = IngestSession::begin(built, &rel, IngestConfig::default())
            .unwrap()
            .with_durability(&snap, &walp)
            .unwrap();
        let ops = op_stream(&rel, n_ops, domain, seed ^ 0x5EED);
        for chunk in ops.chunks(batch) {
            session.apply_batch(chunk).unwrap();
        }
        let queries = probe_queries(domain);
        let live = bit_patterns(session.estimator(), &queries);
        drop(session); // crash: nothing flushed beyond the per-batch fsyncs
        let (recovered, report) =
            IngestSession::recover(&snap, &walp, DbConfig::new(700), IngestConfig::default())
                .unwrap();
        prop_assert_eq!(report.ops_replayed as usize, ops.len());
        prop_assert!(report.tail_discarded.is_none());
        prop_assert_eq!(
            bit_patterns(recovered.estimator(), &queries),
            live,
            "recovery must replay to the same bits"
        );
        std::fs::remove_file(&snap).ok();
        std::fs::remove_file(&walp).ok();
    }
}

/// Truncation sweep: EVERY byte-prefix of a valid WAL either parses
/// strictly to a batch prefix (when it ends exactly on a record
/// boundary) or yields a typed error — and tolerant recovery always
/// returns an exact committed-batch prefix. No prefix is ever read as
/// something the writer did not acknowledge.
#[test]
fn wal_truncation_sweep_never_silently_diverges() {
    let mut state = 0xABCD_EF01u64;
    let batches: Vec<Vec<WalOp>> = (0..6)
        .map(|_| {
            (0..1 + xorshift(&mut state) % 4)
                .map(|_| {
                    let row: Vec<u32> =
                        (0..3).map(|_| (xorshift(&mut state) % 16) as u32).collect();
                    if xorshift(&mut state).is_multiple_of(3) {
                        WalOp::Delete(row)
                    } else {
                        WalOp::Insert(row)
                    }
                })
                .collect()
        })
        .collect();
    let path = std::env::temp_dir().join(format!("dbhist-sweep-{}.wal", std::process::id()));
    let mut w = dbhist::persist::WalWriter::create(&path, 3).unwrap();
    let mut boundaries = vec![wal::WAL_HEADER_LEN];
    for ops in &batches {
        w.append(ops).unwrap();
        let bytes = std::fs::metadata(&path).unwrap().len();
        boundaries.push(usize::try_from(bytes).unwrap());
    }
    let full = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();

    for cut in 0..=full.len() {
        let prefix = &full[..cut];
        let strict = wal::read(prefix);
        if cut < wal::WAL_HEADER_LEN {
            assert!(
                matches!(strict, Err(PersistError::Truncated { .. })),
                "headerless prefix {cut} must be a typed truncation"
            );
            assert!(wal::recover(prefix).is_err(), "recover needs a header too");
            continue;
        }
        let committed = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        if boundaries.contains(&cut) {
            // Exactly on a record boundary: a valid (shorter) log.
            let contents = strict.unwrap_or_else(|e| panic!("boundary cut {cut}: {e}"));
            assert_eq!(contents.batches.len(), committed);
            for (got, want) in contents.batches.iter().zip(&batches) {
                assert_eq!(&got.ops, want);
            }
        } else {
            // Mid-record: strict read errors, typed.
            let err = strict.expect_err("mid-record prefix must not parse");
            assert!(
                matches!(
                    err,
                    PersistError::Truncated { .. }
                        | PersistError::WalRecordCrc { .. }
                        | PersistError::Corrupt { .. }
                ),
                "cut {cut}: unexpected error {err:?}"
            );
        }
        // Tolerant recovery agrees on the committed prefix in all cases.
        let recovery = wal::recover(prefix).unwrap();
        assert_eq!(recovery.batches.len(), committed, "cut {cut}");
        for (got, want) in recovery.batches.iter().zip(&batches) {
            assert_eq!(&got.ops, want);
        }
        assert_eq!(recovery.tail_error.is_none(), boundaries.contains(&cut), "cut {cut}");
    }
}

/// Flipping any single byte of a committed record is detected: the
/// strict read errors (typed), and recovery never returns a batch
/// stream that disagrees with what the writer acknowledged before the
/// corrupted record.
#[test]
fn wal_bitflips_are_always_detected() {
    let path = std::env::temp_dir().join(format!("dbhist-flip-{}.wal", std::process::id()));
    let mut w = dbhist::persist::WalWriter::create(&path, 2).unwrap();
    w.append(&[WalOp::Insert(vec![1, 2]), WalOp::Delete(vec![3, 4])]).unwrap();
    w.append(&[WalOp::Insert(vec![5, 6])]).unwrap();
    let full = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let reference = wal::read(&full).unwrap();

    for pos in 0..full.len() {
        let mut mutated = full.clone();
        mutated[pos] ^= 0x01;
        match wal::read(&mutated) {
            Err(_) => {} // typed rejection: good
            Ok(contents) => {
                // A flip the strict reader accepts must be... impossible
                // for CRC-protected payloads; only header/frame bytes
                // could theoretically alias, and none do.
                assert_eq!(
                    contents, reference,
                    "byte {pos}: accepted mutation changed the decoded stream"
                );
            }
        }
        // Tolerant recovery, when the header survives, returns a prefix
        // of the acknowledged batches — never altered content.
        if let Ok(rec) = wal::recover(&mutated) {
            for (got, want) in rec.batches.iter().zip(&reference.batches) {
                assert_eq!(got, want, "byte {pos}: recovery diverged");
            }
        }
    }
}
