//! Negative and adversarial tests for the split-tree wire codec: truncated,
//! bit-flipped, and hand-crafted malformed buffers must yield
//! `HistogramError`, never a panic, and successful decodes must preserve
//! estimates.

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests assert by panicking

use dbhist::distribution::{Relation, Schema};
use dbhist::histogram::codec::{decode_split_tree, encode_split_tree};
use dbhist::histogram::mhist::MhistBuilder;
use dbhist::histogram::SplitCriterion;

fn sample_tree() -> dbhist::histogram::mhist::SplitTree {
    let schema = Schema::new(vec![("x", 16), ("y", 8)]).unwrap();
    let rows: Vec<Vec<u32>> = (0..256u32).map(|i| vec![i % 16, (i / 16) % 8]).collect();
    let rel = Relation::from_rows(schema, rows).unwrap();
    MhistBuilder::build(&rel.distribution(), 10, SplitCriterion::MaxDiff).unwrap()
}

/// Pinned from `tests/edge_cases.proptest-regressions` (`shrinks to
/// pos = 1202, val = 0`): upstream proptest found a byte position whose
/// zeroing made `decode_split_tree` panic. The vendored proptest stand-in
/// cannot replay `cc` hash lines, so the shrunk case is pinned here as a
/// plain test; the regression file stays checked in for runs against real
/// proptest.
#[test]
fn regression_bitflip_pos_1202_val_0() {
    let tree = sample_tree();
    let mut bytes = encode_split_tree(&tree).unwrap();
    let idx = 1202 % bytes.len();
    bytes[idx] = 0;
    let _ = decode_split_tree(&bytes);
}

/// Every single-byte corruption of a valid encoding, at every position and
/// for a spread of replacement values, must decode or error — never panic.
/// This is the regression class above, swept exhaustively rather than
/// sampled.
#[test]
fn exhaustive_single_byte_corruption_never_panics() {
    let tree = sample_tree();
    let bytes = encode_split_tree(&tree).unwrap();
    for pos in 0..bytes.len() {
        for val in [0u8, 1, 2, 7, 0x7f, 0x80, 0xfe, 0xff] {
            let mut corrupt = bytes.clone();
            corrupt[pos] = val;
            let _ = decode_split_tree(&corrupt);
        }
    }
}

/// Every prefix of a valid encoding must fail cleanly (or, for the full
/// buffer, succeed) — truncation can never panic.
#[test]
fn all_truncations_error_cleanly() {
    let tree = sample_tree();
    let bytes = encode_split_tree(&tree).unwrap();
    for len in 0..bytes.len() {
        assert!(
            decode_split_tree(&bytes[..len]).is_err(),
            "truncation to {len} bytes must not decode"
        );
    }
    assert!(decode_split_tree(&bytes).is_ok());
}

#[test]
fn handcrafted_malformed_headers() {
    // Attribute count claims more entries than the buffer holds.
    let mut bytes = vec![0xff, 0xff];
    assert!(decode_split_tree(&bytes).is_err());
    // Zero attributes, then an orphan leaf: arity-0 trees are rejected.
    bytes = vec![0, 0, 0, 0, 0, 0, 0];
    assert!(decode_split_tree(&bytes).is_err());
    // Duplicate attribute ids in the header.
    let mut dup = Vec::new();
    dup.extend_from_slice(&2u16.to_le_bytes());
    for _ in 0..2 {
        dup.extend_from_slice(&3u16.to_le_bytes());
        dup.extend_from_slice(&0u32.to_le_bytes());
        dup.extend_from_slice(&7u32.to_le_bytes());
    }
    dup.push(0);
    dup.extend_from_slice(&1.0f32.to_le_bytes());
    assert!(decode_split_tree(&dup).is_err());
    // Inverted domain range (lo > hi).
    let mut inv = Vec::new();
    inv.extend_from_slice(&1u16.to_le_bytes());
    inv.extend_from_slice(&0u16.to_le_bytes());
    inv.extend_from_slice(&9u32.to_le_bytes());
    inv.extend_from_slice(&3u32.to_le_bytes());
    inv.push(0);
    inv.extend_from_slice(&1.0f32.to_le_bytes());
    assert!(decode_split_tree(&inv).is_err());
}

#[test]
fn deep_nesting_is_rejected_not_overflowed() {
    // A pathological chain of left-leaning internal nodes beyond the
    // decoder's depth guard: must error, not exhaust the stack.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&1u16.to_le_bytes());
    bytes.extend_from_slice(&0u16.to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes());
    bytes.extend_from_slice(&100_000u32.to_le_bytes());
    for split in 1..=8192u32 {
        bytes.push(1); // internal
        bytes.push(0); // dimension 0
        bytes.extend_from_slice(&split.to_le_bytes());
    }
    bytes.push(0);
    bytes.extend_from_slice(&1.0f32.to_le_bytes());
    assert!(decode_split_tree(&bytes).is_err());
}

/// Round trip preserves structure and every box estimate to f32 precision.
#[test]
fn roundtrip_preserves_estimates() {
    let tree = sample_tree();
    let decoded = decode_split_tree(&encode_split_tree(&tree).unwrap()).unwrap();
    assert_eq!(decoded.attrs(), tree.attrs());
    assert_eq!(decoded.bucket_count(), tree.bucket_count());
    for xlo in 0..4u32 {
        for xhi in xlo..16u32 {
            for ylo in 0..3u32 {
                let a = tree.mass_in_box(&[(0, xlo, xhi), (1, ylo, 7)]);
                let b = decoded.mass_in_box(&[(0, xlo, xhi), (1, ylo, 7)]);
                assert!((a - b).abs() < 1e-3 * (1.0 + a.abs()), "({xlo},{xhi},{ylo}): {a} vs {b}");
            }
        }
    }
}
