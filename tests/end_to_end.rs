//! End-to-end integration: data generation → model selection → synopsis
//! construction → query estimation, across all workspace crates.

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests assert by panicking

use dbhist::core::baselines::{IndEstimator, MhistEstimator, SamplingEstimator};
use dbhist::core::{Query, SelectivityEstimator, SynopsisBuilder};
use dbhist::data::census::{self, attrs};
use dbhist::data::metrics::ErrorSummary;
use dbhist::data::workload::{Workload, WorkloadConfig};
use dbhist::histogram::SplitCriterion;

fn census_small() -> dbhist::distribution::Relation {
    census::census_data_set_1_with(10_000, 99)
}

#[test]
fn full_pipeline_produces_reasonable_estimates() {
    let rel = census_small();
    let db = SynopsisBuilder::new(&rel).budget(3 * 1024).build_mhist().unwrap();
    let workload = Workload::generate(
        &rel,
        WorkloadConfig { dimensionality: 2, queries: 30, min_count: 100, seed: 4 },
    );
    assert!(!workload.is_empty());
    let summary = ErrorSummary::evaluate(&workload, |r| db.estimate(&Query::from(r)));
    // The paper reports <50% average relative error on real data; allow
    // slack for the reduced scale.
    assert!(summary.mean_relative < 1.0, "rel err {}", summary.mean_relative);
    assert!(summary.mean_multiplicative < 10.0, "mult err {}", summary.mean_multiplicative);
}

#[test]
fn model_selection_finds_census_structure() {
    let rel = census_small();
    let db = SynopsisBuilder::new(&rel).budget(3 * 1024).build_mhist().unwrap();
    let g = db.model().graph();
    // The origin cluster must be connected in the model graph.
    let origin = [attrs::COUNTRY, attrs::MOTHER_COUNTRY, attrs::FATHER_COUNTRY, attrs::CITIZENSHIP];
    let connected = origin
        .iter()
        .flat_map(|&a| origin.iter().map(move |&b| (a, b)))
        .filter(|&(a, b)| a < b && g.same_component(a, b))
        .count();
    assert!(connected >= 3, "origin attributes should interconnect: {g}");
    // Age stays disconnected from the origin cluster.
    assert!(!g.same_component(attrs::AGE, attrs::COUNTRY), "age must remain independent: {g}");
}

#[test]
fn db_beats_ind_on_correlated_multidim_queries() {
    let rel = census_small();
    let budget = 3 * 1024;
    let db = SynopsisBuilder::new(&rel).budget(budget).build_mhist().unwrap();
    let ind = IndEstimator::build(&rel, budget, SplitCriterion::MaxDiff).unwrap();
    // Queries over the strongly-correlated pair.
    let workload = Workload::generate(
        &rel,
        WorkloadConfig { dimensionality: 3, queries: 30, min_count: 100, seed: 8 },
    );
    let db_sum = ErrorSummary::evaluate(&workload, |r| db.estimate(&Query::from(r)));
    let ind_sum = ErrorSummary::evaluate(&workload, |r| ind.estimate(&Query::from(r)));
    // The paper's headline: on multiplicative error, the DB histogram wins
    // on multi-dimensional workloads (IND systematically underestimates).
    assert!(
        db_sum.mean_multiplicative < ind_sum.mean_multiplicative,
        "DB {db_sum:?} vs IND {ind_sum:?}"
    );
}

#[test]
fn all_estimators_satisfy_storage_budget() {
    let rel = census_small();
    let budget = 2 * 1024;
    let db = SynopsisBuilder::new(&rel).budget(budget).build_mhist().unwrap();
    let ind = IndEstimator::build(&rel, budget, SplitCriterion::MaxDiff).unwrap();
    let mh = MhistEstimator::build(&rel, budget, SplitCriterion::MaxDiff).unwrap();
    let sm = SamplingEstimator::build(&rel, budget, 1).unwrap();
    for est in [&db as &dyn SelectivityEstimator, &ind, &mh, &sm] {
        assert!(
            est.storage_bytes() <= budget,
            "{} used {} of {budget}",
            est.name(),
            est.storage_bytes()
        );
        // Whole-table estimate is close to N for everyone.
        let n = rel.row_count() as f64;
        let whole = est.estimate(&Query::all());
        assert!((whole - n).abs() / n < 0.01, "{}: {whole} vs {n}", est.name());
    }
}

#[test]
fn grid_and_mhist_db_histograms_agree_roughly() {
    let rel = census_small();
    let mhist_db = SynopsisBuilder::new(&rel).budget(2 * 1024).build_mhist().unwrap();
    let grid_db = SynopsisBuilder::new(&rel).budget(2 * 1024).build_grid().unwrap();
    let ranges = [(attrs::COUNTRY, 0u32, 0u32), (attrs::AGE, 20u32, 60u32)];
    let exact = rel.count_range(&ranges) as f64;
    let query = Query::from(ranges);
    for est in [mhist_db.estimate(&query), grid_db.estimate(&query)] {
        assert!((est - exact).abs() / exact < 0.75, "estimate {est} too far from exact {exact}");
    }
}

#[test]
fn estimates_are_deterministic() {
    let rel = census_small();
    let a = SynopsisBuilder::new(&rel).budget(1024).build_mhist().unwrap();
    let b = SynopsisBuilder::new(&rel).budget(1024).build_mhist().unwrap();
    let query = Query::range(attrs::COUNTRY, 0, 10).and(attrs::RACE, 0, 1);
    assert_eq!(a.estimate(&query), b.estimate(&query));
    assert_eq!(a.model().notation(), b.model().notation());
}
