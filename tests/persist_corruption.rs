//! Corruption and version-skew handling: every damaged snapshot must be
//! rejected with a *typed* [`PersistError`] — never a panic, never UB,
//! never a silently wrong synopsis.
//!
//! The container checksums each section independently, so the test
//! flips one byte inside every section payload in turn and asserts the
//! damage is attributed to that section. A committed previous-format
//! fixture (`tests/fixtures/v1_synopsis.dbh`) pins the version policy:
//! old snapshots are refused with `VersionMismatch`, not misparsed.

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests assert by panicking

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use dbhist::core::{Synopsis, SynopsisBuilder, SynopsisError};
use dbhist::distribution::{Relation, Schema};
use dbhist::persist::{PersistError, Snapshot, FORMAT_VERSION};

fn scratch_path() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("snapcorrupt_{}_{n}.dbh", std::process::id()))
}

/// Builds a small synopsis and returns its snapshot bytes.
fn snapshot_bytes() -> Vec<u8> {
    let schema = Schema::new(vec![("a", 8), ("b", 8), ("c", 4)]).unwrap();
    let rows: Vec<Vec<u32>> = (0..2048).map(|i| vec![i % 8, i % 8, (i / 8) % 4]).collect();
    let rel = Relation::from_rows(schema, rows).unwrap();
    let db = SynopsisBuilder::new(&rel).budget(512).build().unwrap();
    let path = scratch_path();
    db.save(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    bytes
}

/// Loads raw bytes through the public path-based API.
fn load_bytes(bytes: &[u8]) -> Result<Synopsis, SynopsisError> {
    let path = scratch_path();
    std::fs::write(&path, bytes).unwrap();
    let result = Synopsis::load(&path);
    std::fs::remove_file(&path).unwrap();
    result
}

fn persist_error(result: Result<Synopsis, SynopsisError>) -> PersistError {
    match result {
        Err(SynopsisError::Persist(e)) => e,
        Err(other) => panic!("expected a persist error, got {other:?}"),
        Ok(_) => panic!("corrupted snapshot loaded successfully"),
    }
}

#[test]
fn bit_flip_in_each_section_is_caught_as_that_sections_crc_failure() {
    let bytes = snapshot_bytes();
    let parsed = Snapshot::parse(&bytes).unwrap();
    let table: Vec<(u16, std::ops::Range<usize>)> = parsed.section_table().to_vec();
    assert!(table.len() >= 4, "expected meta/schema/graph/junction/factors sections");
    for (kind, range) in table {
        // Flip one bit in the middle of this section's payload.
        let mut damaged = bytes.clone();
        let target = range.start + range.len() / 2;
        damaged[target] ^= 0x01;
        match persist_error(load_bytes(&damaged)) {
            PersistError::SectionCrc { kind: reported } => {
                assert_eq!(reported, kind, "damage attributed to the wrong section");
            }
            other => panic!("section {kind}: expected SectionCrc, got {other:?}"),
        }
    }
}

#[test]
fn bad_magic_is_rejected() {
    let mut bytes = snapshot_bytes();
    bytes[0] = b'X';
    assert_eq!(persist_error(load_bytes(&bytes)), PersistError::BadMagic);
}

#[test]
fn truncation_is_rejected_at_every_length() {
    let bytes = snapshot_bytes();
    // Every proper prefix must fail loudly; sample a spread of cut
    // points plus all the short ones that exercise header parsing.
    let cuts: Vec<usize> = (0..16.min(bytes.len())).chain((16..bytes.len()).step_by(97)).collect();
    for cut in cuts {
        match persist_error(load_bytes(&bytes[..cut])) {
            PersistError::Truncated { .. } | PersistError::Corrupt { .. } => {}
            other => panic!("prefix of {cut} bytes: expected Truncated/Corrupt, got {other:?}"),
        }
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut bytes = snapshot_bytes();
    bytes.extend_from_slice(b"extra");
    assert!(matches!(persist_error(load_bytes(&bytes)), PersistError::Corrupt { .. }));
}

#[test]
fn previous_format_fixture_is_rejected_with_version_mismatch() {
    let fixture = std::fs::read("tests/fixtures/v1_synopsis.dbh").unwrap();
    assert_eq!(
        persist_error(load_bytes(&fixture)),
        PersistError::VersionMismatch { found: 1, expected: FORMAT_VERSION }
    );
    // Belt and braces: the fixture really is a v1 header.
    assert_eq!(&fixture[..4], b"DBHS");
    assert_eq!(u16::from_le_bytes([fixture[4], fixture[5]]), 1);
}

#[test]
fn missing_file_is_an_io_error_not_a_panic() {
    let path = scratch_path();
    match Synopsis::load(&path) {
        Err(SynopsisError::Persist(PersistError::Io { .. })) => {}
        other => panic!("expected Io error for a missing file, got {other:?}"),
    }
}
