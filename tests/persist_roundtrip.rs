//! Property test: `save → load → estimate` is bit-identical.
//!
//! The persistence layer's contract is exactness, not approximation: a
//! loaded synopsis is the *same estimator* as the one saved, down to the
//! bit pattern of every `f64` it returns. This holds across all three
//! factor representations (MHIST split trees, grid histograms, truncated
//! wavelets) and both storage-allocation algorithms, because the exact
//! codecs serialize frequencies by bit pattern and the loaded structures
//! are materialized without re-deriving anything.

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests assert by panicking

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use dbhist::core::builder::{FactorKind, SynopsisBuilder};
use dbhist::core::synopsis::AllocationStrategy;
use dbhist::core::{SelectivityEstimator, Synopsis};
use dbhist::distribution::{Relation, Schema};
use proptest::prelude::*;

/// Unique snapshot path per proptest case, so shrinking runs and
/// parallel test binaries never collide on one file.
fn scratch_path() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("snaproundtrip_{}_{n}.dbh", std::process::id()))
}

/// A small random relation with one correlated pair, over 3–4
/// attributes — enough structure that model selection finds a
/// non-trivial clique set.
fn relation_strategy() -> impl Strategy<Value = Relation> {
    (3usize..=4, 4u32..=10, 60usize..=300, any::<u64>()).prop_map(|(arity, domain, rows, seed)| {
        let schema = Schema::new((0..arity).map(|i| (format!("a{i}"), domain))).unwrap();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let data: Vec<Vec<u32>> = (0..rows)
            .map(|_| {
                let base = (next() % u64::from(domain)) as u32;
                (0..arity)
                    .map(|i| {
                        if i < 2 && next() % 3 != 0 {
                            base
                        } else {
                            (next() % u64::from(domain)) as u32
                        }
                    })
                    .collect()
            })
            .collect();
        Relation::from_rows(schema, data).unwrap()
    })
}

fn factor_kind_strategy() -> impl Strategy<Value = FactorKind> {
    (0u8..3).prop_map(|i| match i {
        0 => FactorKind::Mhist,
        1 => FactorKind::Grid,
        _ => FactorKind::Wavelet,
    })
}

fn allocation_strategy() -> impl Strategy<Value = AllocationStrategy> {
    (0u8..2).prop_map(|i| {
        if i == 0 {
            AllocationStrategy::IncrementalGains
        } else {
            AllocationStrategy::OptimalDp
        }
    })
}

/// Every 1-D and 2-D range over the first attributes, plus the full box —
/// a workload dense enough that a single representation bit lost in the
/// round trip would shift some estimate.
fn workload(rel: &Relation) -> Vec<Vec<(u16, u32, u32)>> {
    let schema = rel.schema();
    let mut queries = Vec::new();
    let d0 = schema.attr(0).unwrap().domain_size;
    let d1 = schema.attr(1).unwrap().domain_size;
    for lo in 0..d0.min(4) {
        for hi in lo..d0 {
            queries.push(vec![(0, lo, hi)]);
        }
    }
    for split in 1..d1 {
        queries.push(vec![(0, 0, d0 / 2), (1, split - 1, split)]);
    }
    queries.push(
        (0..schema.arity())
            .map(|a| {
                let d = schema.attr(a as u16).unwrap().domain_size;
                (a as u16, 0, d - 1)
            })
            .collect(),
    );
    queries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn save_load_estimate_is_bit_identical(
        rel in relation_strategy(),
        kind in factor_kind_strategy(),
        alloc in allocation_strategy(),
        budget in 256usize..2048,
    ) {
        let built = SynopsisBuilder::new(&rel)
            .budget(budget)
            .factor(kind)
            .allocation(alloc)
            .build()
            .unwrap();

        let path = scratch_path();
        built.save(&path).unwrap();
        let loaded = Synopsis::load(&path).unwrap();
        std::fs::remove_file(&path).unwrap();

        prop_assert_eq!(loaded.factor_kind(), built.factor_kind());
        prop_assert_eq!(loaded.storage_bytes(), built.storage_bytes());
        prop_assert_eq!(loaded.model().cliques(), built.model().cliques());

        for q in workload(&rel) {
            let q = dbhist::core::Query::from(q);
            let a = built.estimate(&q);
            let b = loaded.estimate(&q);
            prop_assert_eq!(
                a.to_bits(), b.to_bits(),
                "estimate diverged on {:?}: built {} vs loaded {}", q, a, b
            );
        }
    }
}

/// A second save of a loaded synopsis produces byte-identical files —
/// the codec has one canonical encoding, so snapshots are stable under
/// save/load cycles (and therefore diffable / content-addressable).
#[test]
fn resave_is_byte_identical() {
    let schema = Schema::new(vec![("a", 8), ("b", 8), ("c", 4)]).unwrap();
    let rows: Vec<Vec<u32>> = (0..4096).map(|i| vec![i % 8, i % 8, (i / 8) % 4]).collect();
    let rel = Relation::from_rows(schema, rows).unwrap();
    let built = SynopsisBuilder::new(&rel).budget(512).build().unwrap();

    let first = scratch_path();
    let second = scratch_path();
    built.save(&first).unwrap();
    let loaded = Synopsis::load(&first).unwrap();
    loaded.save(&second).unwrap();

    let bytes_first = std::fs::read(&first).unwrap();
    let bytes_second = std::fs::read(&second).unwrap();
    std::fs::remove_file(&first).unwrap();
    std::fs::remove_file(&second).unwrap();
    assert_eq!(bytes_first, bytes_second, "re-saved snapshot differs from the original");
}
