//! Property tests: the plan-based query engine is observationally
//! identical to the recursive Fig. 3 interpreter.
//!
//! `MarginalPlan`/`MassPlan` compile the interpreter's recursion into a
//! step program whose execution replays the *same* factor operations in
//! the *same* order on the *same* operands — so results must match
//! bit-for-bit (not just within tolerance), for exact factors and for
//! approximate MHIST split trees alike, over randomized junction trees,
//! factors, and query sets. Cached replays (plan cache and materialized
//! marginal cache) must also be bit-identical to their cold runs.
//!
//! The dense kernel backend rides the same contract: lowered tree
//! indices (dense or sparse layout), the engine's pooled scratch reuse
//! across interleaved queries, and the O(log b) windowed range sums must
//! all stay bit-identical to the recursive walks they replace.

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests assert by panicking

use dbhist::core::factor::{ExactFactor, Factor};
use dbhist::core::marginal::{
    compute_marginal_interpreted, compute_marginal_with_stats, estimate_mass,
    estimate_mass_interpreted,
};
use dbhist::core::plan::QueryEngine;
use dbhist::core::Query;
use dbhist::distribution::{AttrId, AttrSet, Relation, Schema};
use dbhist::histogram::mhist::{MhistBuilder, SPARSE_OCCUPANCY_THRESHOLD};
use dbhist::histogram::{IndexLayout, OneDimHistogram, SplitCriterion, SplitTree, TreeIndex};
use dbhist::model::chordal::addable_edge_separator;
use dbhist::model::{DecomposableModel, MarkovGraph};
use proptest::prelude::*;

/// A query shape (target attributes) plus its conjunctive box.
type BoxQuery = (AttrSet, Query);

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// A random relation (with correlations), a random decomposable model
/// over a randomly grown chordal graph, and exact clique factors.
fn build_setup(
    arity: usize,
    domain: u32,
    rows: usize,
    seed: u64,
) -> (Relation, DecomposableModel, Vec<ExactFactor>, u64) {
    let mut state = seed | 1;
    let schema = Schema::new((0..arity).map(|i| (format!("a{i}"), domain))).unwrap();
    let data: Vec<Vec<u32>> = (0..rows)
        .map(|_| {
            let base = (xorshift(&mut state) % u64::from(domain)) as u32;
            (0..arity)
                .map(|i| {
                    if i % 2 == 0 && !xorshift(&mut state).is_multiple_of(3) {
                        base
                    } else {
                        (xorshift(&mut state) % u64::from(domain)) as u32
                    }
                })
                .collect()
        })
        .collect();
    let rel = Relation::from_rows(schema, data).unwrap();

    // Random chordal graph by legal edge insertion; junction trees built
    // from it are valid by construction (debug validators check).
    let mut g = MarkovGraph::empty(arity);
    let edges = (xorshift(&mut state) % 9) as usize;
    let mut added = 0;
    for _ in 0..edges * 4 {
        if added >= edges {
            break;
        }
        let u = (xorshift(&mut state) % arity as u64) as AttrId;
        let v = (xorshift(&mut state) % arity as u64) as AttrId;
        if u != v && addable_edge_separator(&g, u, v).is_some() {
            g.add_edge(u, v).unwrap();
            added += 1;
        }
    }
    let model = DecomposableModel::new(rel.schema().clone(), g).unwrap();
    let factors: Vec<ExactFactor> =
        model.cliques().iter().map(|c| ExactFactor(rel.marginal(c).unwrap())).collect();
    (rel, model, factors, state)
}

/// Random non-empty attribute subsets drawn from a bitmask stream.
fn random_targets(arity: usize, state: &mut u64, count: usize) -> Vec<AttrSet> {
    let mut targets = Vec::new();
    while targets.len() < count {
        let mask = xorshift(state) % (1u64 << arity);
        if mask == 0 {
            continue;
        }
        targets.push(AttrSet::from_ids(
            (0..arity as AttrId).filter(|&a| mask & (1 << u64::from(a)) != 0),
        ));
    }
    targets
}

/// A random conjunctive box over exactly the target's attributes.
fn random_ranges(target: &AttrSet, domain: u32, state: &mut u64) -> Vec<(AttrId, u32, u32)> {
    target
        .iter()
        .map(|a| {
            let lo = (xorshift(state) % u64::from(domain)) as u32;
            let width = (xorshift(state) % u64::from(domain)) as u32;
            (a, lo, (lo + width).min(domain - 1))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Planned marginals are bit-identical to the interpreter on exact
    /// factors: same support frequencies, same operation counts.
    #[test]
    fn planned_marginal_bit_identical_exact(
        arity in 3usize..=6,
        domain in 2u32..=6,
        rows in 30usize..=150,
        seed in any::<u64>(),
    ) {
        let (_, model, factors, mut state) = build_setup(arity, domain, rows, seed);
        let tree = model.junction_tree();
        for target in random_targets(arity, &mut state, 6) {
            let (planned, planned_stats) =
                compute_marginal_with_stats(tree, &factors, &target).unwrap();
            let (interp, interp_stats) =
                compute_marginal_interpreted(tree, &factors, &target).unwrap();
            prop_assert_eq!(planned_stats, interp_stats, "{}", &target);
            prop_assert_eq!(planned.attrs(), interp.attrs(), "{}", &target);
            prop_assert_eq!(
                planned.total().to_bits(), interp.total().to_bits(), "{}", &target);
            for (k, v) in interp.0.iter() {
                prop_assert_eq!(
                    planned.0.frequency(k).to_bits(), v.to_bits(),
                    "target {} key {:?}", &target, k
                );
            }
            for (k, v) in planned.0.iter() {
                prop_assert_eq!(
                    interp.0.frequency(k).to_bits(), v.to_bits(),
                    "target {} key {:?}", &target, k
                );
            }
        }
    }

    /// Planned marginals are bit-identical to the interpreter on MHIST
    /// split-tree factors (the approximate path, where operand order and
    /// shed decisions matter most).
    #[test]
    fn planned_marginal_bit_identical_mhist(
        arity in 3usize..=5,
        domain in 2u32..=6,
        rows in 30usize..=150,
        seed in any::<u64>(),
    ) {
        let (rel, model, _, mut state) = build_setup(arity, domain, rows, seed);
        let tree = model.junction_tree();
        let buckets = 2 + (xorshift(&mut state) % 8) as usize;
        let hists: Vec<_> = model
            .cliques()
            .iter()
            .map(|c| {
                MhistBuilder::build(&rel.marginal(c).unwrap(), buckets, SplitCriterion::MaxDiff)
                    .unwrap()
            })
            .collect();
        for target in random_targets(arity, &mut state, 4) {
            let (planned, planned_stats) =
                compute_marginal_with_stats(tree, &hists, &target).unwrap();
            let (interp, interp_stats) =
                compute_marginal_interpreted(tree, &hists, &target).unwrap();
            prop_assert_eq!(planned_stats, interp_stats, "{}", &target);
            prop_assert_eq!(planned.attrs(), interp.attrs(), "{}", &target);
            prop_assert_eq!(
                planned.total().to_bits(), interp.total().to_bits(), "{}", &target);
            for _ in 0..4 {
                let ranges = random_ranges(&target, domain, &mut state);
                prop_assert_eq!(
                    planned.mass_in_box(&ranges).to_bits(),
                    interp.mass_in_box(&ranges).to_bits(),
                    "target {} ranges {:?}", &target, &ranges
                );
            }
        }
    }

    /// Planned selectivity estimation (independent-component mass plans)
    /// is bit-identical to the interpreter, on both factor families.
    #[test]
    fn planned_mass_bit_identical(
        arity in 3usize..=6,
        domain in 2u32..=6,
        rows in 30usize..=150,
        seed in any::<u64>(),
    ) {
        let (rel, model, factors, mut state) = build_setup(arity, domain, rows, seed);
        let tree = model.junction_tree();
        let hists: Vec<_> = model
            .cliques()
            .iter()
            .map(|c| {
                MhistBuilder::build(&rel.marginal(c).unwrap(), 6, SplitCriterion::MaxDiff)
                    .unwrap()
            })
            .collect();
        for target in random_targets(arity, &mut state, 6) {
            let ranges = random_ranges(&target, domain, &mut state);
            let query = Query::from(ranges.as_slice());
            let planned = estimate_mass(tree, &factors, &target, &query).unwrap();
            let interp = estimate_mass_interpreted(tree, &factors, &target, &query).unwrap();
            prop_assert_eq!(
                planned.to_bits(), interp.to_bits(),
                "exact: target {} ranges {:?}: {} vs {}", &target, &ranges, planned, interp
            );
            let planned_h = estimate_mass(tree, &hists, &target, &query).unwrap();
            let interp_h = estimate_mass_interpreted(tree, &hists, &target, &query).unwrap();
            prop_assert_eq!(
                planned_h.to_bits(), interp_h.to_bits(),
                "mhist: target {} ranges {:?}: {} vs {}", &target, &ranges, planned_h, interp_h
            );
        }
    }

    /// Cache replays are bit-identical to cold runs: the plan cache and
    /// the materialized-marginal cache must never change an answer.
    #[test]
    fn engine_cache_replays_bit_identical(
        arity in 3usize..=6,
        domain in 2u32..=6,
        rows in 30usize..=150,
        seed in any::<u64>(),
    ) {
        let (_, model, factors, mut state) = build_setup(arity, domain, rows, seed);
        let tree = model.junction_tree();
        let engine: QueryEngine<ExactFactor> = QueryEngine::new(tree);
        let queries: Vec<BoxQuery> = random_targets(arity, &mut state, 5)
                .into_iter()
                .map(|t| {
                    let r = Query::from(random_ranges(&t, domain, &mut state));
                    (t, r)
                })
                .collect();
        let cold: Vec<f64> = queries
            .iter()
            .map(|(t, r)| engine.estimate_mass(tree, &factors, t, r).unwrap())
            .collect();
        // Warm pass: plans are now cached.
        let warm: Vec<f64> = queries
            .iter()
            .map(|(t, r)| engine.estimate_mass(tree, &factors, t, r).unwrap())
            .collect();
        // Third pass with the materialized-marginal cache enabled (first
        // repetition seeds it, the fourth pass replays from it).
        engine.enable_marginal_cache(32);
        let seeded: Vec<f64> = queries
            .iter()
            .map(|(t, r)| engine.estimate_mass(tree, &factors, t, r).unwrap())
            .collect();
        let cached: Vec<f64> = queries
            .iter()
            .map(|(t, r)| engine.estimate_mass(tree, &factors, t, r).unwrap())
            .collect();
        for (i, c) in cold.iter().enumerate() {
            prop_assert_eq!(c.to_bits(), warm[i].to_bits(), "warm replay differs at {}", i);
            prop_assert_eq!(c.to_bits(), seeded[i].to_bits(), "seed pass differs at {}", i);
            prop_assert_eq!(c.to_bits(), cached[i].to_bits(), "cached replay differs at {}", i);
        }
        let trace = engine.trace();
        prop_assert!(trace.plan_cache_hits >= queries.len(), "{:?}", trace);
        prop_assert!(trace.marginal_cache_hits >= 1, "{:?}", trace);
        // The engine's marginal entry point matches the free function.
        let (t0, _) = &queries[0];
        let via_engine = engine.marginal(tree, &factors, t0).unwrap();
        let (direct, _) = compute_marginal_interpreted(tree, &factors, t0).unwrap();
        for (k, v) in direct.0.iter() {
            prop_assert_eq!(via_engine.0.frequency(k).to_bits(), v.to_bits());
        }
    }

    /// Lowered tree indices: the dense/sparse layout choice follows the
    /// occupancy threshold (computed here independently from the source
    /// tree's leaves), and both layouts answer `mass_in_box` bit-identical
    /// to the recursive `SplitTree` walk — including when one scratch
    /// buffer pair is reused across interleaved trees and queries.
    #[test]
    fn lowered_index_layout_and_mass_bit_identical(
        arity in 1usize..=3,
        domain in 4u32..=16,
        rows in 10usize..=120,
        buckets in 2usize..=24,
        spiky in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let schema = Schema::new((0..arity).map(|i| (format!("a{i}"), domain))).unwrap();
        // `spiky` concentrates mass on the two extreme values so gap
        // buckets go to zero and the sparse layout gets exercised too.
        let data: Vec<Vec<u32>> = (0..rows)
            .map(|_| {
                (0..arity)
                    .map(|_| {
                        if spiky {
                            if xorshift(&mut state).is_multiple_of(2) { 0 } else { domain - 1 }
                        } else {
                            (xorshift(&mut state) % u64::from(domain)) as u32
                        }
                    })
                    .collect()
            })
            .collect();
        let rel = Relation::from_rows(schema, data).unwrap();
        let all = AttrSet::from_ids(0..arity as AttrId);
        let tree = MhistBuilder::build(
            &rel.marginal(&all).unwrap(), buckets, SplitCriterion::MaxDiff).unwrap();
        let index = TreeIndex::lower(&tree).unwrap();

        // Layout selection: recompute occupancy from the source tree.
        let leaves = tree.leaves();
        #[allow(clippy::cast_precision_loss)]
        let occupancy =
            leaves.iter().filter(|&&(_, f)| f != 0.0).count() as f64 / leaves.len() as f64;
        let expected = if occupancy < SPARSE_OCCUPANCY_THRESHOLD {
            IndexLayout::Sparse
        } else {
            IndexLayout::Dense
        };
        prop_assert_eq!(index.layout(), expected, "occupancy {}", occupancy);
        prop_assert!((index.occupancy() - occupancy).abs() < 1e-12);
        prop_assert_eq!(index.total().to_bits(), tree.total().to_bits());

        // One scratch pair, reused across every query (and in the 2-attr
        // case across a second lowered tree), stays bit-identical.
        let other = MhistBuilder::build(
            &rel.marginal(&AttrSet::singleton(0)).unwrap(),
            buckets.min(4),
            SplitCriterion::MaxDiff,
        )
        .unwrap();
        let other_index = TreeIndex::lower(&other).unwrap();
        let mut bounds = Vec::new();
        let mut constraint = Vec::new();
        for _ in 0..12 {
            let ranges = random_ranges(&all, domain, &mut state);
            let walked = tree.mass_in_box(&ranges);
            let indexed = index.mass_in_box_with(&ranges, &mut bounds, &mut constraint);
            prop_assert_eq!(
                indexed.to_bits(), walked.to_bits(),
                "{:?} on {:?}: {} vs {}", index.layout(), &ranges, indexed, walked
            );
            // Interleave a query against the other index through the SAME
            // scratch buffers: reuse must not leak state between kernels.
            let sub = &ranges[..1];
            prop_assert_eq!(
                other_index.mass_in_box_with(sub, &mut bounds, &mut constraint).to_bits(),
                other.mass_in_box(sub).to_bits()
            );
        }
    }

    /// The engine's kernel path under an interleaved workload: queries
    /// over several targets alternate for many rounds through one engine
    /// (so the pooled scratch is checked out, reused, and returned across
    /// different kernels), and every answer stays bit-identical to the
    /// interpreter. Exact factors have no lowering and must fall back —
    /// also bit-identically.
    #[test]
    fn kernel_scratch_reuse_across_interleaved_queries(
        arity in 3usize..=5,
        domain in 2u32..=6,
        rows in 30usize..=150,
        seed in any::<u64>(),
    ) {
        let (rel, model, factors, mut state) = build_setup(arity, domain, rows, seed);
        let tree = model.junction_tree();
        let hists: Vec<_> = model
            .cliques()
            .iter()
            .map(|c| {
                MhistBuilder::build(&rel.marginal(c).unwrap(), 6, SplitCriterion::MaxDiff)
                    .unwrap()
            })
            .collect();
        let queries: Vec<BoxQuery> = random_targets(arity, &mut state, 4)
            .into_iter()
            .map(|t| {
                let r = Query::from(random_ranges(&t, domain, &mut state));
                (t, r)
            })
            .collect();

        // Split-tree factors lower; the warm rounds ride the kernels.
        let engine: QueryEngine<SplitTree> = QueryEngine::new(tree);
        let mut rounds: Vec<Vec<u64>> = Vec::new();
        for _ in 0..3 {
            rounds.push(
                queries
                    .iter()
                    .map(|(t, q)| engine.estimate_mass(tree, &hists, t, q).unwrap().to_bits())
                    .collect(),
            );
        }
        for (i, (t, q)) in queries.iter().enumerate() {
            let interp = estimate_mass_interpreted(tree, &hists, t, q).unwrap();
            for round in &rounds {
                prop_assert_eq!(
                    round[i], interp.to_bits(),
                    "target {} diverged from the interpreter under interleaving", t
                );
            }
        }
        let trace = engine.trace();
        prop_assert!(
            trace.kernel_lowered_dense + trace.kernel_lowered_sparse >= 1,
            "split-tree groups must lower: {:?}", trace
        );
        prop_assert!(
            trace.kernel_hits >= queries.len(),
            "warm rounds must ride the kernels: {:?}", trace
        );
        prop_assert_eq!(trace.kernel_fallbacks, 0, "{:?}", trace);

        // Exact factors cannot lower: same workload, pure fallback, still
        // bit-identical to the interpreter.
        let exact_engine: QueryEngine<_> = QueryEngine::new(tree);
        for _ in 0..2 {
            for (t, q) in &queries {
                let via_engine = exact_engine.estimate_mass(tree, &factors, t, q).unwrap();
                let interp = estimate_mass_interpreted(tree, &factors, t, q).unwrap();
                prop_assert_eq!(via_engine.to_bits(), interp.to_bits(), "{}", t);
            }
        }
        let exact_trace = exact_engine.trace();
        prop_assert_eq!(exact_trace.kernel_hits, 0, "{:?}", exact_trace);
        prop_assert!(exact_trace.kernel_fallbacks >= 1, "{:?}", exact_trace);
    }

    /// The windowed (partition-point) 1-D range scan is bit-identical to
    /// the pre-windowing linear scan for every box over random skewed
    /// histograms — the O(log b) seek must never change a sum.
    #[test]
    fn windowed_range_sums_bit_identical_to_linear(
        domain in 2u32..=48,
        buckets in 1usize..=16,
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let schema = Schema::new(vec![("x", domain)]).unwrap();
        let rows: Vec<Vec<u32>> = (0..200)
            .map(|_| {
                // Quadratic skew concentrates mass at high values, so
                // bucket widths vary and partial overlaps are common.
                let r = xorshift(&mut state) % u64::from(domain);
                let v = (r * r / u64::from(domain).max(1)) as u32;
                vec![v.min(domain - 1)]
            })
            .collect();
        let rel = Relation::from_rows(schema, rows).unwrap();
        let h = OneDimHistogram::build(
            &rel.distribution(), 0, buckets, SplitCriterion::MaxDiff).unwrap();
        for lo in 0..domain {
            for hi in 0..domain {
                // The pre-windowing linear scan, verbatim.
                let mut reference = 0.0;
                if lo <= hi {
                    for b in h.buckets() {
                        if b.hi < lo || b.lo > hi {
                            continue;
                        }
                        let olo = b.lo.max(lo);
                        let ohi = b.hi.min(hi);
                        reference += b.freq * ((f64::from(ohi - olo) + 1.0) / b.width() as f64);
                    }
                }
                prop_assert_eq!(h.estimate_range(lo, hi).to_bits(), reference.to_bits());
            }
        }
    }

    /// EXPLAIN recording is observation-only: `estimate_mass_explained`
    /// returns the same bits as `estimate_mass` on cold compiles, warm
    /// kernel replays, and mixed call orders on a shared engine — the
    /// probe may time and label, never touch an operand.
    #[test]
    fn explain_recording_bit_identical(
        arity in 3usize..=6,
        domain in 2u32..=6,
        rows in 30usize..=150,
        seed in any::<u64>(),
    ) {
        let (_rel, model, factors, mut state) = build_setup(arity, domain, rows, seed);
        let tree = model.junction_tree();
        let plain: QueryEngine<ExactFactor> = QueryEngine::new(tree);
        let explained: QueryEngine<ExactFactor> = QueryEngine::new(tree);
        let workload: Vec<BoxQuery> = random_targets(arity, &mut state, 6)
            .into_iter()
            .map(|target| {
                let ranges = random_ranges(&target, domain, &mut state);
                (target, Query::from(ranges.as_slice()))
            })
            .collect();
        // Two passes: the first compiles (and lowers kernels), the
        // second replays warm — both must agree bit-for-bit.
        for pass in 0..2 {
            for (target, query) in &workload {
                let p = plain.estimate_mass(tree, &factors, target, query).unwrap();
                let (e, report) =
                    explained.estimate_mass_explained(tree, &factors, target, query).unwrap();
                prop_assert_eq!(
                    p.to_bits(), e.to_bits(),
                    "pass {}: target {}: plain {} vs explained {}", pass, target, p, e
                );
                prop_assert_eq!(report.estimate.to_bits(), e.to_bits());
                prop_assert!(!report.path.as_str().is_empty());
            }
        }
        // Mixed order on one engine: an explained call warming the cache
        // for a plain call (and vice versa) must not perturb answers.
        let shared: QueryEngine<ExactFactor> = QueryEngine::new(tree);
        for (target, query) in &workload {
            let (first, _) =
                shared.estimate_mass_explained(tree, &factors, target, query).unwrap();
            let second = shared.estimate_mass(tree, &factors, target, query).unwrap();
            let expected = plain.estimate_mass(tree, &factors, target, query).unwrap();
            prop_assert_eq!(first.to_bits(), expected.to_bits());
            prop_assert_eq!(second.to_bits(), expected.to_bits());
        }
    }
}
