//! Property tests: the plan-based query engine is observationally
//! identical to the recursive Fig. 3 interpreter.
//!
//! `MarginalPlan`/`MassPlan` compile the interpreter's recursion into a
//! step program whose execution replays the *same* factor operations in
//! the *same* order on the *same* operands — so results must match
//! bit-for-bit (not just within tolerance), for exact factors and for
//! approximate MHIST split trees alike, over randomized junction trees,
//! factors, and query sets. Cached replays (plan cache and materialized
//! marginal cache) must also be bit-identical to their cold runs.

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests assert by panicking

use dbhist::core::factor::{ExactFactor, Factor};
use dbhist::core::marginal::{
    compute_marginal_interpreted, compute_marginal_with_stats, estimate_mass,
    estimate_mass_interpreted,
};
use dbhist::core::plan::QueryEngine;
use dbhist::distribution::{AttrId, AttrSet, Relation, Schema};
use dbhist::histogram::mhist::MhistBuilder;
use dbhist::histogram::SplitCriterion;
use dbhist::model::chordal::addable_edge_separator;
use dbhist::model::{DecomposableModel, MarkovGraph};
use proptest::prelude::*;

/// A query shape (target attributes) plus its conjunctive box.
type BoxQuery = (AttrSet, Vec<(AttrId, u32, u32)>);

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// A random relation (with correlations), a random decomposable model
/// over a randomly grown chordal graph, and exact clique factors.
fn build_setup(
    arity: usize,
    domain: u32,
    rows: usize,
    seed: u64,
) -> (Relation, DecomposableModel, Vec<ExactFactor>, u64) {
    let mut state = seed | 1;
    let schema = Schema::new((0..arity).map(|i| (format!("a{i}"), domain))).unwrap();
    let data: Vec<Vec<u32>> = (0..rows)
        .map(|_| {
            let base = (xorshift(&mut state) % u64::from(domain)) as u32;
            (0..arity)
                .map(|i| {
                    if i % 2 == 0 && !xorshift(&mut state).is_multiple_of(3) {
                        base
                    } else {
                        (xorshift(&mut state) % u64::from(domain)) as u32
                    }
                })
                .collect()
        })
        .collect();
    let rel = Relation::from_rows(schema, data).unwrap();

    // Random chordal graph by legal edge insertion; junction trees built
    // from it are valid by construction (debug validators check).
    let mut g = MarkovGraph::empty(arity);
    let edges = (xorshift(&mut state) % 9) as usize;
    let mut added = 0;
    for _ in 0..edges * 4 {
        if added >= edges {
            break;
        }
        let u = (xorshift(&mut state) % arity as u64) as AttrId;
        let v = (xorshift(&mut state) % arity as u64) as AttrId;
        if u != v && addable_edge_separator(&g, u, v).is_some() {
            g.add_edge(u, v).unwrap();
            added += 1;
        }
    }
    let model = DecomposableModel::new(rel.schema().clone(), g).unwrap();
    let factors: Vec<ExactFactor> =
        model.cliques().iter().map(|c| ExactFactor(rel.marginal(c).unwrap())).collect();
    (rel, model, factors, state)
}

/// Random non-empty attribute subsets drawn from a bitmask stream.
fn random_targets(arity: usize, state: &mut u64, count: usize) -> Vec<AttrSet> {
    let mut targets = Vec::new();
    while targets.len() < count {
        let mask = xorshift(state) % (1u64 << arity);
        if mask == 0 {
            continue;
        }
        targets.push(AttrSet::from_ids(
            (0..arity as AttrId).filter(|&a| mask & (1 << u64::from(a)) != 0),
        ));
    }
    targets
}

/// A random conjunctive box over exactly the target's attributes.
fn random_ranges(target: &AttrSet, domain: u32, state: &mut u64) -> Vec<(AttrId, u32, u32)> {
    target
        .iter()
        .map(|a| {
            let lo = (xorshift(state) % u64::from(domain)) as u32;
            let width = (xorshift(state) % u64::from(domain)) as u32;
            (a, lo, (lo + width).min(domain - 1))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Planned marginals are bit-identical to the interpreter on exact
    /// factors: same support frequencies, same operation counts.
    #[test]
    fn planned_marginal_bit_identical_exact(
        arity in 3usize..=6,
        domain in 2u32..=6,
        rows in 30usize..=150,
        seed in any::<u64>(),
    ) {
        let (_, model, factors, mut state) = build_setup(arity, domain, rows, seed);
        let tree = model.junction_tree();
        for target in random_targets(arity, &mut state, 6) {
            let (planned, planned_stats) =
                compute_marginal_with_stats(tree, &factors, &target).unwrap();
            let (interp, interp_stats) =
                compute_marginal_interpreted(tree, &factors, &target).unwrap();
            prop_assert_eq!(planned_stats, interp_stats, "{}", &target);
            prop_assert_eq!(planned.attrs(), interp.attrs(), "{}", &target);
            prop_assert_eq!(
                planned.total().to_bits(), interp.total().to_bits(), "{}", &target);
            for (k, v) in interp.0.iter() {
                prop_assert_eq!(
                    planned.0.frequency(k).to_bits(), v.to_bits(),
                    "target {} key {:?}", &target, k
                );
            }
            for (k, v) in planned.0.iter() {
                prop_assert_eq!(
                    interp.0.frequency(k).to_bits(), v.to_bits(),
                    "target {} key {:?}", &target, k
                );
            }
        }
    }

    /// Planned marginals are bit-identical to the interpreter on MHIST
    /// split-tree factors (the approximate path, where operand order and
    /// shed decisions matter most).
    #[test]
    fn planned_marginal_bit_identical_mhist(
        arity in 3usize..=5,
        domain in 2u32..=6,
        rows in 30usize..=150,
        seed in any::<u64>(),
    ) {
        let (rel, model, _, mut state) = build_setup(arity, domain, rows, seed);
        let tree = model.junction_tree();
        let buckets = 2 + (xorshift(&mut state) % 8) as usize;
        let hists: Vec<_> = model
            .cliques()
            .iter()
            .map(|c| {
                MhistBuilder::build(&rel.marginal(c).unwrap(), buckets, SplitCriterion::MaxDiff)
                    .unwrap()
            })
            .collect();
        for target in random_targets(arity, &mut state, 4) {
            let (planned, planned_stats) =
                compute_marginal_with_stats(tree, &hists, &target).unwrap();
            let (interp, interp_stats) =
                compute_marginal_interpreted(tree, &hists, &target).unwrap();
            prop_assert_eq!(planned_stats, interp_stats, "{}", &target);
            prop_assert_eq!(planned.attrs(), interp.attrs(), "{}", &target);
            prop_assert_eq!(
                planned.total().to_bits(), interp.total().to_bits(), "{}", &target);
            for _ in 0..4 {
                let ranges = random_ranges(&target, domain, &mut state);
                prop_assert_eq!(
                    planned.mass_in_box(&ranges).to_bits(),
                    interp.mass_in_box(&ranges).to_bits(),
                    "target {} ranges {:?}", &target, &ranges
                );
            }
        }
    }

    /// Planned selectivity estimation (independent-component mass plans)
    /// is bit-identical to the interpreter, on both factor families.
    #[test]
    fn planned_mass_bit_identical(
        arity in 3usize..=6,
        domain in 2u32..=6,
        rows in 30usize..=150,
        seed in any::<u64>(),
    ) {
        let (rel, model, factors, mut state) = build_setup(arity, domain, rows, seed);
        let tree = model.junction_tree();
        let hists: Vec<_> = model
            .cliques()
            .iter()
            .map(|c| {
                MhistBuilder::build(&rel.marginal(c).unwrap(), 6, SplitCriterion::MaxDiff)
                    .unwrap()
            })
            .collect();
        for target in random_targets(arity, &mut state, 6) {
            let ranges = random_ranges(&target, domain, &mut state);
            let planned = estimate_mass(tree, &factors, &target, &ranges).unwrap();
            let interp = estimate_mass_interpreted(tree, &factors, &target, &ranges).unwrap();
            prop_assert_eq!(
                planned.to_bits(), interp.to_bits(),
                "exact: target {} ranges {:?}: {} vs {}", &target, &ranges, planned, interp
            );
            let planned_h = estimate_mass(tree, &hists, &target, &ranges).unwrap();
            let interp_h = estimate_mass_interpreted(tree, &hists, &target, &ranges).unwrap();
            prop_assert_eq!(
                planned_h.to_bits(), interp_h.to_bits(),
                "mhist: target {} ranges {:?}: {} vs {}", &target, &ranges, planned_h, interp_h
            );
        }
    }

    /// Cache replays are bit-identical to cold runs: the plan cache and
    /// the materialized-marginal cache must never change an answer.
    #[test]
    fn engine_cache_replays_bit_identical(
        arity in 3usize..=6,
        domain in 2u32..=6,
        rows in 30usize..=150,
        seed in any::<u64>(),
    ) {
        let (_, model, factors, mut state) = build_setup(arity, domain, rows, seed);
        let tree = model.junction_tree();
        let engine: QueryEngine<ExactFactor> = QueryEngine::new(tree);
        let queries: Vec<BoxQuery> = random_targets(arity, &mut state, 5)
                .into_iter()
                .map(|t| {
                    let r = random_ranges(&t, domain, &mut state);
                    (t, r)
                })
                .collect();
        let cold: Vec<f64> = queries
            .iter()
            .map(|(t, r)| engine.estimate_mass(tree, &factors, t, r).unwrap())
            .collect();
        // Warm pass: plans are now cached.
        let warm: Vec<f64> = queries
            .iter()
            .map(|(t, r)| engine.estimate_mass(tree, &factors, t, r).unwrap())
            .collect();
        // Third pass with the materialized-marginal cache enabled (first
        // repetition seeds it, the fourth pass replays from it).
        engine.enable_marginal_cache(32);
        let seeded: Vec<f64> = queries
            .iter()
            .map(|(t, r)| engine.estimate_mass(tree, &factors, t, r).unwrap())
            .collect();
        let cached: Vec<f64> = queries
            .iter()
            .map(|(t, r)| engine.estimate_mass(tree, &factors, t, r).unwrap())
            .collect();
        for (i, c) in cold.iter().enumerate() {
            prop_assert_eq!(c.to_bits(), warm[i].to_bits(), "warm replay differs at {}", i);
            prop_assert_eq!(c.to_bits(), seeded[i].to_bits(), "seed pass differs at {}", i);
            prop_assert_eq!(c.to_bits(), cached[i].to_bits(), "cached replay differs at {}", i);
        }
        let trace = engine.trace();
        prop_assert!(trace.plan_cache_hits >= queries.len(), "{:?}", trace);
        prop_assert!(trace.marginal_cache_hits >= 1, "{:?}", trace);
        // The engine's marginal entry point matches the free function.
        let (t0, _) = &queries[0];
        let via_engine = engine.marginal(tree, &factors, t0).unwrap();
        let (direct, _) = compute_marginal_interpreted(tree, &factors, t0).unwrap();
        for (k, v) in direct.0.iter() {
            prop_assert_eq!(via_engine.0.frequency(k).to_bits(), v.to_bits());
        }
    }
}
