//! Property tests: parallel synopsis construction (`threads > 1`) is
//! bit-identical to the serial path (`threads = 1`).
//!
//! The parallel pipeline fans out candidate-edge scoring, per-clique
//! histogram construction, and allocation gain tables — but every value
//! it computes is a pure function of the relation, and every ranking or
//! reduction stays serial with the serial path's deterministic
//! tie-breaks. So over randomized relations, budgets, factor families,
//! and selection knobs, the two builds must agree exactly: same model,
//! same factors, same storage accounting, same instrumentation counts,
//! and bit-for-bit identical estimates.

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests assert by panicking

use dbhist::core::error::SynopsisError;
use dbhist::core::{FactorKind, SelectivityEstimator, Synopsis, SynopsisBuilder};
use dbhist::distribution::{AttrId, Relation, Schema};
use dbhist::model::selection::{EdgeHeuristic, SelectionAlgorithm};
use proptest::prelude::*;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// A random relation where even attributes correlate with a shared
/// per-row base value and odd attributes are independent noise.
fn random_relation(arity: usize, domain: u32, rows: usize, seed: u64) -> (Relation, u64) {
    let mut state = seed | 1;
    let schema = Schema::new((0..arity).map(|i| (format!("a{i}"), domain))).unwrap();
    let data: Vec<Vec<u32>> = (0..rows)
        .map(|_| {
            let base = (xorshift(&mut state) % u64::from(domain)) as u32;
            (0..arity)
                .map(|i| {
                    if i % 2 == 0 && !xorshift(&mut state).is_multiple_of(3) {
                        base
                    } else {
                        (xorshift(&mut state) % u64::from(domain)) as u32
                    }
                })
                .collect()
        })
        .collect();
    (Relation::from_rows(schema, data).unwrap(), state)
}

/// Random conjunctive boxes over random attribute subsets.
fn random_queries(
    arity: usize,
    domain: u32,
    state: &mut u64,
    count: usize,
) -> Vec<Vec<(AttrId, u32, u32)>> {
    let mut queries = Vec::new();
    while queries.len() < count {
        let mask = xorshift(state) % (1u64 << arity);
        if mask == 0 {
            continue;
        }
        queries.push(
            (0..arity as AttrId)
                .filter(|&a| mask & (1 << u64::from(a)) != 0)
                .map(|a| {
                    let lo = (xorshift(state) % u64::from(domain)) as u32;
                    let width = (xorshift(state) % u64::from(domain)) as u32;
                    (a, lo, (lo + width).min(domain - 1))
                })
                .collect(),
        );
    }
    queries
}

/// Asserts two same-kind synopses are observationally bit-identical
/// (panics on divergence, like every other assertion in these tests).
fn assert_synopses_identical(
    serial: &Synopsis,
    parallel: &Synopsis,
    queries: &[Vec<(AttrId, u32, u32)>],
) {
    assert_eq!(serial.factor_kind(), parallel.factor_kind());
    assert_eq!(serial.model().graph(), parallel.model().graph());
    assert_eq!(serial.model().cliques(), parallel.model().cliques());
    assert_eq!(serial.storage_bytes(), parallel.storage_bytes());
    let (st, pt) = (serial.build_trace(), parallel.build_trace());
    assert_eq!(st.cliques, pt.cliques);
    assert_eq!(st.selection_steps, pt.selection_steps);
    assert_eq!(st.peak_candidates, pt.peak_candidates);
    assert_eq!(st.entropy_computations, pt.entropy_computations);
    assert_eq!(st.splits_funded, pt.splits_funded);
    // The factor collections themselves must match, not just summaries:
    // Debug output exposes every bucket boundary and frequency.
    match (serial, parallel) {
        (Synopsis::Mhist(s), Synopsis::Mhist(p)) => {
            assert_eq!(format!("{:?}", s.factors()), format!("{:?}", p.factors()));
        }
        (Synopsis::Grid(s), Synopsis::Grid(p)) => {
            assert_eq!(format!("{:?}", s.factors()), format!("{:?}", p.factors()));
        }
        (Synopsis::Wavelet(s), Synopsis::Wavelet(p)) => {
            assert_eq!(format!("{:?}", s.factors()), format!("{:?}", p.factors()));
        }
        _ => panic!("factor kinds diverged"),
    }
    for ranges in queries {
        let query = dbhist::core::Query::from(ranges.as_slice());
        let a = serial.try_estimate(&query).unwrap();
        let b = parallel.try_estimate(&query).unwrap();
        assert_eq!(a.to_bits(), b.to_bits(), "ranges {ranges:?}: {a} vs {b}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// MHIST builds: serial and 4-thread pipelines agree bit-for-bit over
    /// random relations, budgets, heuristics, and algorithms.
    #[test]
    fn parallel_mhist_build_bit_identical(
        arity in 3usize..=5,
        domain in 2u32..=6,
        rows in 30usize..=150,
        budget in 100usize..=700,
        db1 in any::<bool>(),
        naive in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (rel, mut state) = random_relation(arity, domain, rows, seed);
        let heuristic = if db1 { EdgeHeuristic::Db1 } else { EdgeHeuristic::Db2 };
        let algorithm =
            if naive { SelectionAlgorithm::Naive } else { SelectionAlgorithm::Efficient };
        let build = |threads: usize| {
            SynopsisBuilder::new(&rel)
                .budget(budget)
                .threads(threads)
                // Floors lowered so small fixtures still exercise the
                // parallel scoring/construction paths.
                .parallel_floors(2, 2)
                .heuristic(heuristic)
                .algorithm(algorithm)
                .build()
        };
        match (build(1), build(4)) {
            (Ok(serial), Ok(parallel)) => {
                let queries = random_queries(arity, domain, &mut state, 6);
                assert_synopses_identical(&serial, &parallel, &queries);
            }
            // Too-small budgets must be rejected identically.
            (Err(SynopsisError::Budget { .. }), Err(SynopsisError::Budget { .. })) => {}
            (s, p) => {
                prop_assert!(false, "serial/parallel disagree on outcome: {:?} vs {:?}",
                    s.map(|x| x.factor_kind()), p.map(|x| x.factor_kind()));
            }
        }
    }

    /// Grid and wavelet factor families go through the same parallel
    /// phases and must match bit-for-bit too.
    #[test]
    fn parallel_build_bit_identical_all_kinds(
        arity in 3usize..=4,
        domain in 2u32..=5,
        rows in 30usize..=120,
        budget in 150usize..=700,
        seed in any::<u64>(),
    ) {
        let (rel, mut state) = random_relation(arity, domain, rows, seed);
        for kind in [FactorKind::Grid, FactorKind::Wavelet] {
            let build = |threads: usize| {
                SynopsisBuilder::new(&rel)
                    .budget(budget)
                    .threads(threads)
                    .parallel_floors(2, 2)
                    .factor(kind)
                    .build()
            };
            match (build(1), build(3)) {
                (Ok(serial), Ok(parallel)) => {
                    let queries = random_queries(arity, domain, &mut state, 4);
                    assert_synopses_identical(&serial, &parallel, &queries);
                }
                (Err(SynopsisError::Budget { .. }), Err(SynopsisError::Budget { .. })) => {}
                (s, p) => {
                    prop_assert!(false, "{:?}: serial/parallel disagree: {:?} vs {:?}",
                        kind, s.map(|x| x.factor_kind()), p.map(|x| x.factor_kind()));
                }
            }
        }
    }

    /// The thread count itself is irrelevant beyond serial-vs-parallel:
    /// any worker count yields the same synopsis as any other.
    #[test]
    fn thread_count_never_changes_the_synopsis(
        threads_a in 2usize..=6,
        threads_b in 2usize..=6,
        seed in any::<u64>(),
    ) {
        let (rel, mut state) = random_relation(4, 5, 120, seed);
        let build = |threads: usize| {
            SynopsisBuilder::new(&rel)
                .budget(400)
                .threads(threads)
                .parallel_floors(2, 2)
                .build()
                .unwrap()
        };
        let a = build(threads_a);
        let b = build(threads_b);
        let queries = random_queries(4, 5, &mut state, 4);
        assert_synopses_identical(&a, &b, &queries);
    }
}
