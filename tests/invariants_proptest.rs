//! Property-based invariants on the core data structures, spanning crates.

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests assert by panicking

use dbhist::core::alloc::{error_curve, incremental_gains, optimal_dp, CurvePoint};
use dbhist::core::build::MhistCliqueBuilder;
use dbhist::core::factor::ExactFactor;
use dbhist::core::marginal::{compute_marginal_naive, compute_marginal_with_stats};
use dbhist::distribution::{AttrId, AttrSet, Relation, Schema};
use dbhist::histogram::codec::{decode_split_tree, encode_split_tree};
use dbhist::histogram::mhist::MhistBuilder;
use dbhist::histogram::SplitCriterion;
use dbhist::model::chordal::{addable_edge_separator, is_chordal, maximal_cliques};
use dbhist::model::selection::{ForwardSelector, SelectionConfig};
use dbhist::model::{DecomposableModel, JunctionTree, MarkovGraph};
use proptest::prelude::*;

/// Strategy: a small random relation over 2–4 attributes.
fn relation_strategy() -> impl Strategy<Value = Relation> {
    (2usize..=4, 2u32..=8, 10usize..=200, any::<u64>()).prop_map(|(arity, domain, rows, seed)| {
        let schema = Schema::new((0..arity).map(|i| (format!("a{i}"), domain))).unwrap();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let data: Vec<Vec<u32>> = (0..rows)
            .map(|_| {
                // Correlate even attributes with attribute 0.
                let base = (next() % u64::from(domain)) as u32;
                (0..arity)
                    .map(|i| {
                        if i % 2 == 0 && next() % 3 != 0 {
                            base
                        } else {
                            (next() % u64::from(domain)) as u32
                        }
                    })
                    .collect()
            })
            .collect();
        Relation::from_rows(schema, data).unwrap()
    })
}

/// Strategy: a random chordal graph built by random legal edge insertion.
fn chordal_graph_strategy() -> impl Strategy<Value = MarkovGraph> {
    (3usize..=7, any::<u64>(), 0usize..=15).prop_map(|(n, seed, edges)| {
        let mut g = MarkovGraph::empty(n);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut added = 0;
        for _ in 0..edges * 4 {
            if added >= edges {
                break;
            }
            let u = (next() % n as u64) as AttrId;
            let v = (next() % n as u64) as AttrId;
            if u != v && addable_edge_separator(&g, u, v).is_some() {
                g.add_edge(u, v).unwrap();
                added += 1;
            }
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// MHIST split trees conserve total mass at any budget, and their
    /// range estimates never exceed the total.
    #[test]
    fn split_tree_mass_conservation(rel in relation_strategy(), buckets in 1usize..32) {
        let dist = rel.distribution();
        let tree = MhistBuilder::build(&dist, buckets, SplitCriterion::MaxDiff).unwrap();
        prop_assert!(tree.validate().is_ok());
        prop_assert!((tree.total() - dist.total()).abs() < 1e-6);
        let mass = tree.mass_in_box(&[(0, 0, 3)]);
        prop_assert!(mass >= -1e-9 && mass <= tree.total() + 1e-6);
    }

    /// Projection conserves mass and agrees with direct estimation on the
    /// projected attributes.
    #[test]
    fn split_tree_projection_invariants(rel in relation_strategy(), buckets in 2usize..24) {
        let dist = rel.distribution();
        let tree = MhistBuilder::build(&dist, buckets, SplitCriterion::MaxDiff).unwrap();
        let target = AttrSet::singleton(0);
        let p = tree.project(&target).unwrap();
        prop_assert!(p.validate().is_ok());
        prop_assert!((p.total() - tree.total()).abs() < 1e-6 * (1.0 + tree.total()));
        let d = rel.schema().domain_size(0);
        for lo in 0..d.min(4) {
            let direct = tree.mass_in_box(&[(0, lo, d - 1)]);
            let projected = p.mass_in_box(&[(0, lo, d - 1)]);
            prop_assert!((direct - projected).abs() < 1e-6 * (1.0 + direct));
        }
    }

    /// Product of two disjoint marginals behaves like independence:
    /// total preserved, marginals recoverable.
    #[test]
    fn split_tree_product_invariants(rel in relation_strategy(), buckets in 2usize..16) {
        let a0 = AttrSet::singleton(0);
        let a1 = AttrSet::singleton(1);
        let d0 = rel.marginal(&a0).unwrap();
        let d1 = rel.marginal(&a1).unwrap();
        let h0 = MhistBuilder::build(&d0, buckets, SplitCriterion::MaxDiff).unwrap();
        let h1 = MhistBuilder::build(&d1, buckets, SplitCriterion::MaxDiff).unwrap();
        let prod = h0.product(&h1).unwrap();
        prop_assert!(prod.validate().is_ok());
        let n = rel.row_count() as f64;
        prop_assert!((prod.total() - n).abs() < 1e-6 * (1.0 + n));
    }

    /// Codec round-trip preserves structure and bucket count.
    #[test]
    fn codec_roundtrip(rel in relation_strategy(), buckets in 1usize..24) {
        let dist = rel.distribution();
        let tree = MhistBuilder::build(&dist, buckets, SplitCriterion::MaxDiff).unwrap();
        let decoded = decode_split_tree(&encode_split_tree(&tree).unwrap()).unwrap();
        prop_assert_eq!(decoded.bucket_count(), tree.bucket_count());
        prop_assert_eq!(decoded.attrs(), tree.attrs());
        prop_assert!((decoded.total() - tree.total()).abs() < 1e-2 * (1.0 + tree.total()));
    }

    /// Random legal edge insertion keeps graphs chordal, and junction
    /// trees built from them always satisfy the clique-intersection
    /// property with cliques covering every vertex.
    #[test]
    fn junction_tree_invariants(g in chordal_graph_strategy()) {
        prop_assert!(is_chordal(&g));
        let jt = JunctionTree::build(&g).unwrap();
        prop_assert!(jt.satisfies_clique_intersection_property());
        let mut covered = AttrSet::empty();
        for c in jt.cliques() {
            covered = covered.union(c);
        }
        prop_assert_eq!(covered.len(), g.vertex_count());
        // Tree shape: |edges| = |cliques| − 1.
        prop_assert_eq!(jt.edges().len(), jt.len() - 1);
        // Cliques of a chordal graph are cliques of the graph.
        for c in maximal_cliques(&g) {
            prop_assert!(g.is_clique(&c));
        }
    }

    /// Forward selection always produces a chordal (decomposable) model
    /// with cliques within k_max, and never increases divergence.
    #[test]
    fn selection_invariants(rel in relation_strategy(), k_max in 2usize..4) {
        let config = SelectionConfig { k_max, theta: 0.5, ..Default::default() };
        let result = ForwardSelector::new(&rel, config).run();
        prop_assert!(is_chordal(result.model.graph()));
        prop_assert!(result.model.max_clique_size() <= k_max);
        let mut prev = result.initial_divergence;
        for step in &result.steps {
            prop_assert!(step.divergence_after <= prev + 1e-9);
            prev = step.divergence_after;
        }
    }

    /// ComputeMarginal equals the naive full-reconstruction strategy on
    /// exact factors, for every single- and two-attribute target.
    #[test]
    fn compute_marginal_equals_naive(rel in relation_strategy()) {
        let model = {
            let result = ForwardSelector::new(
                &rel,
                SelectionConfig { theta: 0.0, ..Default::default() },
            )
            .run();
            result.model
        };
        let factors: Vec<ExactFactor> = model
            .cliques()
            .iter()
            .map(|c| ExactFactor(rel.marginal(c).unwrap()))
            .collect();
        let n = rel.schema().arity() as AttrId;
        for a in 0..n {
            for b in (a + 1)..n {
                let target = AttrSet::from_ids([a, b]);
                let (fast, _) = compute_marginal_with_stats(
                    model.junction_tree(), &factors, &target).unwrap();
                let (naive, _) = compute_marginal_naive(
                    model.junction_tree(), &factors, &target).unwrap();
                for (k, v) in naive.0.iter() {
                    prop_assert!(
                        (fast.0.frequency(k) - v).abs() < 1e-6 * (1.0 + v.abs()),
                        "target {} key {:?}: {} vs {}",
                        target, k, fast.0.frequency(k), v
                    );
                }
            }
        }
    }

    /// Backward elimination always yields a chordal model within k_max,
    /// never below the true structure's divergence floor, and each
    /// removal weakly increases divergence.
    #[test]
    fn backward_elimination_invariants(rel in relation_strategy()) {
        use dbhist::model::backward::backward_eliminate;
        let config = SelectionConfig { theta: 0.5, ..Default::default() };
        let result = backward_eliminate(&rel, config);
        prop_assert!(is_chordal(result.model.graph()));
        prop_assert!(result.model.max_clique_size() <= config.k_max);
        let mut prev = result.initial_divergence;
        for step in &result.steps {
            prop_assert!(step.divergence_after >= prev - 1e-9);
            prev = step.divergence_after;
        }
    }

    /// Haar synopses: full retention reconstructs exactly; the greedy
    /// coefficient order makes truncation error monotone nonincreasing.
    #[test]
    fn wavelet_invariants(rel in relation_strategy(), keep in 1usize..32) {
        use dbhist::histogram::wavelet::HaarBuilder;
        let dist = rel.marginal(&AttrSet::from_ids([0, 1])).unwrap();
        let mut b = HaarBuilder::new(&dist, 1 << 20).unwrap();
        let mut prev = b.error();
        let mut steps = 0;
        while steps < keep && b.add_next() {
            prop_assert!(b.error() <= prev + 1e-9);
            prev = b.error();
            steps += 1;
        }
        // Exhaust: zero residual, exact reconstruction.
        while b.add_next() {}
        prop_assert!(b.error() < 1e-6 * (1.0 + dist.total()));
        let syn = b.finish();
        let rec = syn.reconstruct(dist.schema()).unwrap();
        for (k, f) in dist.iter() {
            prop_assert!((rec.frequency(k) - f).abs() < 1e-6 * (1.0 + f));
        }
    }

    /// Exact message passing agrees with the factor algebra on arbitrary
    /// box queries over selected models.
    #[test]
    fn exact_box_mass_equals_algebra(rel in relation_strategy(), lo in 0u32..4, width in 0u32..4) {
        use dbhist::core::marginal::exact_box_mass;
        let model = ForwardSelector::new(
            &rel,
            SelectionConfig { theta: 0.0, ..Default::default() },
        )
        .run()
        .model;
        let factors: Vec<ExactFactor> = model
            .cliques()
            .iter()
            .map(|c| ExactFactor(rel.marginal(c).unwrap()))
            .collect();
        let d = rel.schema().domain_size(0) - 1;
        let ranges = [(0u16, lo.min(d), (lo + width).min(d)), (1u16, 0, d)];
        let target = AttrSet::from_ids([0, 1]);
        let (marg, _) =
            compute_marginal_with_stats(model.junction_tree(), &factors, &target).unwrap();
        let via_algebra = marg.0.range_mass(&ranges);
        let via_messages = exact_box_mass(model.junction_tree(), &factors, &ranges).unwrap();
        prop_assert!(
            (via_algebra - via_messages).abs() < 1e-6 * (1.0 + via_algebra),
            "{via_algebra} vs {via_messages}"
        );
    }

    /// The saturated model with exact marginals reproduces every range
    /// count exactly (estimator consistency).
    #[test]
    fn saturated_exact_model_is_exact(rel in relation_strategy()) {
        let model = DecomposableModel::saturated(rel.schema().clone());
        let factors: Vec<ExactFactor> = model
            .cliques()
            .iter()
            .map(|c| ExactFactor(rel.marginal(c).unwrap()))
            .collect();
        let target = AttrSet::from_ids([0, 1]);
        let (f, _) =
            compute_marginal_with_stats(model.junction_tree(), &factors, &target).unwrap();
        let truth = rel.marginal(&target).unwrap();
        for (k, v) in truth.iter() {
            prop_assert!((f.0.frequency(k) - v).abs() < 1e-9);
        }
    }

    /// The debug-mode validators accept every structure produced through
    /// the public constructors: junction trees satisfy their structural
    /// invariants, distributions stay non-negative with mass preserved
    /// across projection, and both allocators conserve the byte budget.
    #[test]
    fn validators_accept_constructed_structures(
        rel in relation_strategy(),
        budget in 40usize..400,
    ) {
        let config = SelectionConfig { theta: 0.5, ..Default::default() };
        let result = ForwardSelector::new(&rel, config).run();
        let jt = result.model.junction_tree();
        prop_assert!(jt.validate().is_ok());

        let joint = rel.distribution();
        prop_assert!(joint.validate().is_ok());
        let marg = joint.marginal(&AttrSet::from_ids([0, 1])).unwrap();
        prop_assert!(marg.validate().is_ok());
        prop_assert!((marg.total() - joint.total()).abs() <= 1e-6 * (1.0 + joint.total()));

        let make_builders = || -> Vec<MhistCliqueBuilder> {
            result
                .model
                .cliques()
                .iter()
                .map(|c| {
                    let d = rel.marginal(c).unwrap();
                    MhistCliqueBuilder::start(&d, SplitCriterion::MaxDiff).unwrap()
                })
                .collect()
        };
        let mut builders = make_builders();
        if let Ok(report) = incremental_gains(&mut builders, budget) {
            prop_assert!(report.validate(budget).is_ok());
        }
        let mut for_curves = make_builders();
        let curves: Vec<Vec<CurvePoint>> = for_curves
            .iter_mut()
            .map(|b| error_curve(b, budget))
            .collect();
        if let Ok(picks) = optimal_dp(&curves, budget) {
            let spent: usize = picks.iter().map(|p| p.bytes).sum();
            prop_assert!(spent <= budget);
        }
    }
}
