//! Telemetry is observation-only: enabling the process-wide registry must
//! not change a single bit of any build or query result.

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests assert by panicking

use dbhist::core::plan::QueryTrace;
use dbhist::core::{Query, SelectivityEstimator, SynopsisBuilder};
use dbhist::data::workload::{Workload, WorkloadConfig};
use dbhist::distribution::{Relation, Schema};

/// a == b (8 values), c weakly dependent; N = 4096.
fn relation() -> Relation {
    let schema = Schema::new(vec![("a", 8), ("b", 8), ("c", 6)]).unwrap();
    let rows: Vec<Vec<u32>> = (0..4096u32).map(|i| vec![i % 8, i % 8, (i / 8) % 6]).collect();
    Relation::from_rows(schema, rows).unwrap()
}

/// One full build + workload pass; returns everything a caller could
/// observe: per-query estimate bits, a structural digest of the synopsis,
/// the engine's counters, the build counters, and the drift gauge.
fn run_pipeline(
    rel: &Relation,
    workload: &Workload,
) -> (Vec<u64>, String, QueryTrace, Vec<usize>, f64) {
    let db = SynopsisBuilder::new(rel).budget(2048).build_mhist().unwrap();
    let mut bits = Vec::new();
    for q in &workload.queries {
        let query = Query::from(q.ranges.as_slice());
        bits.push(db.estimate(&query).to_bits());
        db.record_feedback(&query, q.exact as f64);
    }
    let digest = format!("{:?}|{:?}", db.model().graph(), db.factors());
    let build = db.build_trace();
    let build_counts = vec![
        build.cliques,
        build.splits_funded,
        build.selection_steps,
        build.peak_candidates,
        build.entropy_computations,
        build.threads,
    ];
    (bits, digest, db.query_trace(), build_counts, db.drift_monitor().max_drift())
}

#[test]
fn telemetry_on_and_off_are_bit_identical() {
    let rel = relation();
    let workload = Workload::generate(
        &rel,
        WorkloadConfig { dimensionality: 2, queries: 20, min_count: 20, seed: 0x7E1E },
    );

    dbhist::telemetry::set_enabled(false);
    let (bits_off, digest_off, qtrace_off, build_off, drift_off) = run_pipeline(&rel, &workload);

    dbhist::telemetry::set_enabled(true);
    let (bits_on, digest_on, qtrace_on, build_on, drift_on) = run_pipeline(&rel, &workload);
    dbhist::telemetry::set_enabled(false);

    assert_eq!(bits_off, bits_on, "estimates changed when telemetry was enabled");
    assert_eq!(digest_off, digest_on, "model/factors changed when telemetry was enabled");
    assert_eq!(qtrace_off, qtrace_on, "query counters changed when telemetry was enabled");
    assert_eq!(build_off, build_on, "build counters changed when telemetry was enabled");
    assert_eq!(
        drift_off.to_bits(),
        drift_on.to_bits(),
        "drift gauge changed when telemetry was enabled"
    );

    // The enabled run must actually have mirrored into the registry —
    // otherwise this test would pass trivially with telemetry broken.
    let snap = dbhist::telemetry::snapshot();
    let estimates = snap.counter("dbhist_query_estimates_total").unwrap_or(0);
    assert!(estimates >= 2 * workload.queries.len() as u64, "enabled run did not mirror");
}
