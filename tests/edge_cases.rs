//! Degenerate-input and failure-injection tests across the workspace.

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests assert by panicking

use dbhist::core::baselines::{IndEstimator, MhistEstimator};
use dbhist::core::synopsis::DbHistogram;
use dbhist::core::SelectivityEstimator;
use dbhist::core::SynopsisBuilder;
use dbhist::core::{Predicate, Query};
use dbhist::distribution::{AttrSet, Relation, Schema};
use dbhist::histogram::codec::decode_split_tree;
use dbhist::histogram::mhist::MhistBuilder;
use dbhist::histogram::SplitCriterion;
use dbhist::model::selection::{ForwardSelector, SelectionConfig};
use proptest::prelude::*;

#[test]
fn single_value_domains() {
    // Attributes with |D| = 1 carry no information; everything must still
    // build and answer sanely.
    let schema = Schema::new(vec![("const", 1), ("x", 8), ("also_const", 1)]).unwrap();
    let rows: Vec<Vec<u32>> = (0..256u32).map(|i| vec![0, i % 8, 0]).collect();
    let rel = Relation::from_rows(schema, rows).unwrap();
    let db = SynopsisBuilder::new(&rel).budget(256).build_mhist().unwrap();
    assert!((db.estimate(&Query::all()) - 256.0).abs() < 1e-6);
    assert!((db.estimate(&Query::equals(0, 0)) - 256.0).abs() < 1e-6);
    let est = db.estimate(&Query::range(1, 0, 3));
    assert!((est - 128.0).abs() < 32.0, "got {est}");
    // Constant attributes must not be "correlated" with anything.
    assert_eq!(db.model().edge_count(), 0, "{}", db.model().notation());
}

#[test]
fn single_row_relation() {
    let schema = Schema::new(vec![("a", 4), ("b", 4)]).unwrap();
    let rel = Relation::from_rows(schema, vec![vec![2, 3]]).unwrap();
    let db = SynopsisBuilder::new(&rel).budget(128).build_mhist().unwrap();
    assert!((db.estimate(&Query::all()) - 1.0).abs() < 1e-9);
    let hit = db.estimate(&Query::equals(0, 2).eq(1, 3));
    assert!(hit > 0.0);
    let ind = IndEstimator::build(&rel, 128, SplitCriterion::MaxDiff).unwrap();
    assert!((ind.estimate(&Query::all()) - 1.0).abs() < 1e-9);
}

#[test]
fn all_identical_rows() {
    let schema = Schema::new(vec![("a", 10), ("b", 10)]).unwrap();
    let rel = Relation::from_rows(schema, vec![vec![7, 7]; 500]).unwrap();
    let db = SynopsisBuilder::new(&rel).budget(256).build_mhist().unwrap();
    // The single populated cell must be answered well: gap trimming
    // isolates it exactly.
    let est = db.estimate(&Query::equals(0, 7).eq(1, 7));
    assert!((est - 500.0).abs() / 500.0 < 0.05, "got {est}");
    // Far-away boxes are empty.
    assert!(db.estimate(&Query::range(0, 0, 3)) < 1.0);
}

#[test]
fn deterministic_selection_on_ties() {
    // Perfectly symmetric data: repeated runs must pick identical models
    // (deterministic tie-breaking), whatever those ties are.
    let schema = Schema::new(vec![("a", 4), ("b", 4), ("c", 4)]).unwrap();
    let rows: Vec<Vec<u32>> = (0..192u32).map(|i| vec![i % 4, i % 4, i % 4]).collect();
    let rel = Relation::from_rows(schema, rows).unwrap();
    let m1 = ForwardSelector::new(&rel, SelectionConfig::default()).run();
    let m2 = ForwardSelector::new(&rel, SelectionConfig::default()).run();
    assert_eq!(m1.model.graph(), m2.model.graph());
    assert_eq!(m1.model.max_clique_size(), 2);
}

#[test]
fn estimates_never_negative_or_nan() {
    let schema = Schema::new(vec![("a", 16), ("b", 16), ("c", 6)]).unwrap();
    let rows: Vec<Vec<u32>> =
        (0..3000u32).map(|i| vec![(i * i) % 16, (i * 7) % 16, (i / 5) % 6]).collect();
    let rel = Relation::from_rows(schema, rows).unwrap();
    let db = SynopsisBuilder::new(&rel).budget(512).build_mhist().unwrap();
    let mh = MhistEstimator::build(&rel, 512, SplitCriterion::MaxDiff).unwrap();
    let ind = IndEstimator::build(&rel, 512, SplitCriterion::MaxDiff).unwrap();
    for a in (0..16).step_by(3) {
        for c in 0..6 {
            let ranges = [(0u16, a, a + 2), (2u16, c, c)];
            let query = Query::from(ranges);
            for est in [db.estimate(&query), mh.estimate(&query), ind.estimate(&query)] {
                assert!(est.is_finite(), "{ranges:?} -> {est}");
                assert!(est >= 0.0, "{ranges:?} -> {est}");
            }
        }
    }
}

#[test]
fn empty_range_queries_are_zero() {
    let schema = Schema::new(vec![("a", 8), ("b", 8)]).unwrap();
    let rows: Vec<Vec<u32>> = (0..512u32).map(|i| vec![i % 8, (i / 8) % 8]).collect();
    let rel = Relation::from_rows(schema, rows).unwrap();
    let db = SynopsisBuilder::new(&rel).budget(256).build_mhist().unwrap();
    // Contradictory constraints on the same attribute.
    assert_eq!(db.estimate(&Query::range(0, 0, 2).with(Predicate::range(0, 5, 7))), 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The split-tree decoder must never panic on arbitrary bytes — it
    /// either decodes a valid tree or returns a codec error.
    #[test]
    fn codec_decoder_tolerates_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_split_tree(&bytes);
    }

    /// Mutating a single byte of a valid encoding must never panic.
    #[test]
    fn codec_decoder_tolerates_bitflips(pos in 0usize..10_000, val in any::<u8>()) {
        let schema = Schema::new(vec![("x", 16), ("y", 8)]).unwrap();
        let rows: Vec<Vec<u32>> = (0..256u32).map(|i| vec![i % 16, (i / 16) % 8]).collect();
        let rel = Relation::from_rows(schema, rows).unwrap();
        let tree = MhistBuilder::build(&rel.distribution(), 10, SplitCriterion::MaxDiff).unwrap();
        let mut bytes = dbhist::histogram::codec::encode_split_tree(&tree).unwrap();
        let idx = pos % bytes.len();
        bytes[idx] = val;
        let _ = decode_split_tree(&bytes);
    }

    /// `estimate()` (the loose fast path) agrees with materializing the
    /// marginal via `compute_marginal` and querying it, on exact factors.
    #[test]
    fn estimate_mass_matches_materialized_marginal(seed in any::<u64>()) {
        let schema = Schema::new(vec![("a", 6), ("b", 6), ("c", 4), ("d", 4)]).unwrap();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let rows: Vec<Vec<u32>> = (0..400)
            .map(|_| {
                let a = (next() % 6) as u32;
                let c = (next() % 4) as u32;
                vec![a, if next() % 3 == 0 { (next() % 6) as u32 } else { a },
                     c, if next() % 3 == 0 { (next() % 4) as u32 } else { c }]
            })
            .collect();
        let rel = Relation::from_rows(schema, rows).unwrap();
        let model = ForwardSelector::new(
            &rel,
            SelectionConfig { theta: 0.0, ..Default::default() },
        )
        .run()
        .model;
        let db = DbHistogram::exact_for_model(&rel, model).unwrap();
        let ranges = [(0u16, 1u32, 4u32), (2u16, 0u32, 2u32), (3u16, 1u32, 3u32)];
        let fast = db.estimate(&Query::from(ranges));
        let attrs = AttrSet::from_ids([0, 2, 3]);
        let marginal = db.marginal(&attrs).unwrap();
        use dbhist::core::Factor as _;
        let slow = marginal.mass_in_box(&ranges);
        prop_assert!((fast - slow).abs() < 1e-6 * (1.0 + slow.abs()), "{fast} vs {slow}");
    }
}
