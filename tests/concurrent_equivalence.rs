//! Property tests: concurrent serving is bit-identical to the serial
//! engine, per synopsis generation, across mid-run hot swaps.
//!
//! M client threads hammer one `EstimatorService` while the main thread
//! swaps in new generations under load. Every `BatchReply` is tagged
//! with the generation that answered it; its estimates must match, bit
//! for bit, what that generation's synopsis answers serially. This pins
//! the two concurrency claims of the serving layer: the sharded
//! plan/marginal caches are pure memoization (reader count can change
//! hit rates, never estimates), and `swap()` is atomic from a client's
//! point of view (a batch is answered wholly by one generation, and no
//! query is dropped while generations change underneath).

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests assert by panicking

use dbhist::core::service::{EstimatorService, ServiceConfig};
use dbhist::core::{Query, SelectivityEstimator, Synopsis, SynopsisBuilder};
use dbhist::distribution::{AttrId, Relation, Schema};
use proptest::prelude::*;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// A random relation where even attributes correlate with a shared
/// per-row base value and odd attributes are independent noise.
fn random_relation(arity: usize, domain: u32, rows: usize, seed: u64) -> (Relation, u64) {
    let mut state = seed | 1;
    let schema = Schema::new((0..arity).map(|i| (format!("a{i}"), domain))).unwrap();
    let data: Vec<Vec<u32>> = (0..rows)
        .map(|_| {
            let base = (xorshift(&mut state) % u64::from(domain)) as u32;
            (0..arity)
                .map(|i| {
                    if i % 2 == 0 && !xorshift(&mut state).is_multiple_of(3) {
                        base
                    } else {
                        (xorshift(&mut state) % u64::from(domain)) as u32
                    }
                })
                .collect()
        })
        .collect();
    (Relation::from_rows(schema, data).unwrap(), state)
}

/// Random conjunctive boxes over random attribute subsets.
fn random_queries(arity: usize, domain: u32, state: &mut u64, count: usize) -> Vec<Query> {
    let mut queries = Vec::new();
    while queries.len() < count {
        let mask = xorshift(state) % (1u64 << arity);
        if mask == 0 {
            continue;
        }
        queries.push(
            (0..arity as AttrId)
                .filter(|&a| mask & (1 << u64::from(a)) != 0)
                .map(|a| {
                    let lo = (xorshift(state) % u64::from(domain)) as u32;
                    let width = (xorshift(state) % u64::from(domain)) as u32;
                    (a, lo, (lo + width).min(domain - 1))
                })
                .collect::<Vec<_>>()
                .into(),
        );
    }
    queries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Four client threads × repeated batches against a 3-worker service
    /// with two mid-run swaps: every reply is bit-identical to the
    /// serial answer of the generation that served it.
    #[test]
    fn concurrent_service_bit_identical_to_serial_across_swaps(
        arity in 3usize..=4,
        domain in 2u32..=5,
        rows in 30usize..=120,
        budget in 150usize..=600,
        seed in any::<u64>(),
    ) {
        let (rel, mut state) = random_relation(arity, domain, rows, seed);
        let queries = random_queries(arity, domain, &mut state, 6);

        // Three generations over the same relation with different
        // budgets — different bucketizations, so the generations are
        // genuinely distinguishable by their estimates.
        let generations: Vec<Synopsis> = [budget, budget + 64, budget + 160]
            .iter()
            .map(|&b| SynopsisBuilder::new(&rel).budget(b).build().unwrap())
            .collect();

        // Serial reference: expected[g][q] = generation g+1's answer,
        // computed single-threaded before the service ever sees it.
        let expected: Vec<Vec<u64>> = generations
            .iter()
            .map(|s| queries.iter().map(|q| s.estimate(q).to_bits()).collect())
            .collect();

        let mut gens = generations.into_iter();
        let service =
            EstimatorService::start(gens.next().unwrap(), ServiceConfig { workers: 3, ..ServiceConfig::default() });

        const CLIENTS: u64 = 4;
        const BATCHES_PER_CLIENT: u64 = 12;
        let total_batches = CLIENTS * BATCHES_PER_CLIENT;
        std::thread::scope(|s| {
            for _ in 0..CLIENTS {
                let service = &service;
                let queries = &queries;
                let expected = &expected;
                s.spawn(move || {
                    for _ in 0..BATCHES_PER_CLIENT {
                        let reply = service.estimate_batch(queries.clone()).unwrap();
                        let g = usize::try_from(reply.generation).unwrap();
                        assert!(g >= 1 && g <= expected.len(), "generation {g} out of range");
                        assert_eq!(reply.estimates.len(), queries.len(), "no query dropped");
                        for (i, est) in reply.estimates.iter().enumerate() {
                            assert_eq!(
                                est.to_bits(),
                                expected[g - 1][i],
                                "gen {g}, query {i}: concurrent answer diverged from serial"
                            );
                        }
                    }
                });
            }
            // Swap under load: wait until some traffic has flowed, then
            // install the next generation; repeat. Yielding keeps this
            // deterministic-enough on a single core without sleeps.
            for (i, next) in gens.enumerate() {
                let threshold = (i as u64 + 1) * total_batches / 3;
                while service.stats().batches < threshold.min(total_batches - 1) {
                    std::thread::yield_now();
                }
                service.swap(next);
            }
        });

        let stats = service.stats();
        prop_assert_eq!(stats.swaps, 2);
        prop_assert_eq!(stats.batches, total_batches);
        prop_assert_eq!(stats.requests, total_batches * queries.len() as u64);
        prop_assert_eq!(stats.dropped_replies, 0, "swap must never drop a query");
    }
}
