//! Keeping a synopsis fresh under inserts — the paper's future-work
//! feature, implemented.
//!
//! A table receives a stream of inserts. At first the new tuples follow
//! the old correlation pattern (counts simply shift); later the pattern
//! *changes*, the model goes stale, the drift monitor notices, and a
//! rebuild restores accuracy.
//!
//! ```text
//! cargo run --release --example synopsis_maintenance
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // binaries/examples: abort on a broken build

use dbhist::core::maintenance::MaintainedDbHistogram;
use dbhist::core::synopsis::DbConfig;
use dbhist::core::{Query, SelectivityEstimator};
use dbhist::data::census::{self, attrs};
use dbhist::distribution::Relation;

fn report(m: &MaintainedDbHistogram, rel: &Relation, label: &str) {
    // Probe: immigrant persons with home-born mothers — sensitive to the
    // country/mother correlation the model encodes.
    let probe = Query::range(attrs::COUNTRY, 1, 112).eq(attrs::MOTHER_COUNTRY, 0);
    let est = m.estimate(&probe);
    let exact = rel.count_range(probe.ranges()) as f64;
    let err = if exact > 0.0 { (est - exact).abs() / exact } else { est };
    println!(
        "{label:<28} rows {:>7.0} | staleness {:>5.2} drift {:>5.3} | probe est {est:>8.0} exact {exact:>8.0} (rel.err {err:.2})",
        m.row_count(),
        m.staleness(),
        m.drift(),
    );
}

fn main() {
    let base = census::census_data_set_1_with(30_000, 21);
    let mut maintained = MaintainedDbHistogram::build(&base, DbConfig::new(3 * 1024)).unwrap();
    println!("initial model: {}\n", maintained.synopsis().model().notation());

    // Accumulate the true table alongside for ground truth.
    let mut all_rows: Vec<Vec<u32>> = base.rows().map(<[u32]>::to_vec).collect();
    report(&maintained, &base, "fresh build");

    // Phase 1: inserts that FOLLOW the learned pattern.
    let more = census::census_data_set_1_with(6_000, 22);
    for row in more.rows() {
        maintained.insert(row);
        all_rows.push(row.to_vec());
    }
    let rel = Relation::from_rows(base.schema().clone(), all_rows.clone()).unwrap();
    report(&maintained, &rel, "after aligned inserts");

    // Phase 2: a migration wave breaking the old correlations — immigrant
    // persons whose mothers are home-born.
    for i in 0..6_000u32 {
        let row = vec![1 + i % 3, 1 + i % 112, 0, 0, 4, 20 + i % 50];
        maintained.insert(&row);
        all_rows.push(row);
    }
    let rel = Relation::from_rows(base.schema().clone(), all_rows.clone()).unwrap();
    report(&maintained, &rel, "after pattern-breaking wave");

    let needs = maintained.needs_rebuild(0.25, 0.15);
    println!("\nneeds_rebuild(churn>25% or drift>0.15)? {needs}");
    if needs {
        maintained.rebuild(&rel).unwrap();
        println!("rebuilt model: {}", maintained.synopsis().model().notation());
        report(&maintained, &rel, "after rebuild");
    }
}
