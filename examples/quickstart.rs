//! Quickstart: build a DEPENDENCY-BASED histogram on a Census-like table
//! and use it to answer range-selectivity queries.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // binaries/examples: abort on a broken build

use dbhist::core::{Query, SelectivityEstimator, SynopsisBuilder};
use dbhist::data::census;

fn main() {
    // 1. A 6-attribute Census-like table (race, country, mother-country,
    //    father-country, citizenship, age); see the paper §4.1.
    let relation = census::census_data_set_1_with(30_000, 7);
    println!("table: {} rows x {} attributes", relation.row_count(), relation.schema().arity());

    // 2. Build a DB histogram in 3 KB: forward-select a decomposable
    //    model (DB2 heuristic, k_max = 2, θ = 0.90), then fund MHIST
    //    clique histograms with IncrementalGains.
    let db = SynopsisBuilder::new(&relation)
        .budget(3 * 1024)
        .build_mhist()
        .expect("construction succeeds");
    println!("model: {}", db.model().notation());
    println!(
        "synopsis: {} clique histograms, {} bytes ({:.2}% of the raw data)",
        db.factors().len(),
        db.storage_bytes(),
        100.0 * db.storage_bytes() as f64
            / (relation.row_count() * relation.schema().arity() * 4) as f64
    );

    // 3. Estimate some selectivities with typed queries and compare
    //    with the exact answers.
    let queries: Vec<(&str, Query)> = vec![
        ("country = home", Query::equals(census::attrs::COUNTRY, 0)),
        (
            "country = home AND mother = home",
            Query::equals(census::attrs::COUNTRY, 0).eq(census::attrs::MOTHER_COUNTRY, 0),
        ),
        (
            "immigrant families (country in 1..40, mother in 1..40)",
            Query::range(census::attrs::COUNTRY, 1, 40).and(census::attrs::MOTHER_COUNTRY, 1, 40),
        ),
        (
            "citizens aged 30-50",
            Query::equals(census::attrs::CITIZENSHIP, 0).and(census::attrs::AGE, 30, 50),
        ),
    ];
    println!("\n{:<55} {:>10} {:>10} {:>8}", "predicate", "estimate", "exact", "rel.err");
    for (label, query) in queries {
        let estimate = db.estimate(&query);
        let exact = relation.count_range(query.ranges()) as f64;
        let err = if exact > 0.0 { (estimate - exact).abs() / exact } else { estimate };
        println!("{label:<55} {estimate:>10.0} {exact:>10.0} {err:>8.3}");
    }
}
