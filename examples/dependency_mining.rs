//! Dependency discovery as a data-mining tool.
//!
//! The paper (§2.3) notes that interpretable decomposable models "can
//! provide useful insights into the intrinsic properties and correlations
//! in the data, even for purposes other than synopsis construction". This
//! example runs forward selection on the housing data set and narrates
//! what the model says: which attribute clusters are correlated, which
//! conditional independencies hold, and how strong each discovered
//! interaction is.
//!
//! ```text
//! cargo run --release --example dependency_mining
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // binaries/examples: abort on a broken build

use dbhist::data::housing;
use dbhist::distribution::EntropyCache;
use dbhist::model::selection::{ForwardSelector, SelectionConfig};

fn main() {
    let rel = housing::california_housing_with(20_000, 5);
    let schema = rel.schema().clone();
    let name = |a: u16| schema.attr(a).expect("valid attr").name.clone();

    println!(
        "mining dependencies in {} rows x {} attributes...\n",
        rel.row_count(),
        schema.arity()
    );

    let config =
        SelectionConfig { k_max: 3, theta: 0.99, max_edges: Some(12), ..Default::default() };
    let result = ForwardSelector::new(&rel, config).run();

    println!("discovered interactions (in selection order):");
    println!("{:<28} {:>12} {:>14} {:>12}", "edge", "ΔD (nats)", "G²", "significance");
    for step in &result.steps {
        let c = &step.candidate;
        let sep = if c.separator.is_empty() {
            String::new()
        } else {
            format!("  | given {{{}}}", c.separator.iter().map(name).collect::<Vec<_>>().join(", "))
        };
        println!(
            "{:<28} {:>12.4} {:>14.0} {:>12.6}{sep}",
            format!("{} — {}", name(c.u), name(c.v)),
            c.improvement,
            c.test.g_squared,
            c.test.significance,
        );
    }

    println!("\nfinal model: {}", result.model.notation());
    println!("generators (correlated clusters):");
    for clique in result.model.cliques() {
        let names: Vec<String> = clique.iter().map(name).collect();
        println!("  {{{}}}", names.join(", "));
    }

    // Read conditional independencies off the model (global Markov
    // property; one statement per junction-tree separator).
    println!("\nconditional independencies entailed by the model:");
    for statement in result.model.independence_statements() {
        let fmt_set =
            |s: &dbhist::distribution::AttrSet| s.iter().map(name).collect::<Vec<_>>().join(", ");
        if statement.given.is_empty() {
            println!("  {{{}}} ⊥ {{{}}}", fmt_set(&statement.left), fmt_set(&statement.right));
        } else {
            println!(
                "  {{{}}} ⊥ {{{}}}  given {{{}}}",
                fmt_set(&statement.left),
                fmt_set(&statement.right),
                fmt_set(&statement.given)
            );
        }
    }

    // Residual divergence: how much structure the model leaves on the table.
    let mut cache = EntropyCache::new(&rel);
    println!(
        "\ndivergence: independence {:.3} nats → selected model {:.3} nats",
        result.initial_divergence,
        result.model.divergence(&mut cache),
    );
    println!("(entropy computations during selection: {})", result.entropy_computations);
}
