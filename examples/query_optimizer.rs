//! Cost-based query optimization with synopsis-backed selectivities.
//!
//! A (toy) optimizer must order the predicates of a conjunctive filter so
//! the most selective ones run first. It only has a synopsis to consult —
//! this example shows how the independence assumption misorders
//! predicates on correlated attributes while a DB histogram gets the
//! ordering right, and quantifies the work wasted by each plan.
//!
//! ```text
//! cargo run --release --example query_optimizer
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // binaries/examples: abort on a broken build

use dbhist::core::baselines::IndEstimator;
use dbhist::core::{Query, SelectivityEstimator, SynopsisBuilder};
use dbhist::data::census::{self, attrs};
use dbhist::histogram::SplitCriterion;

/// Tuples examined by a pipeline that applies `predicates` in the given
/// order: every tuple is touched by stage 1, survivors by stage 2, etc.
fn pipeline_cost(rel: &dbhist::distribution::Relation, order: &[(u16, u32, u32)]) -> u64 {
    let mut cost = 0u64;
    let mut active: Vec<(u16, u32, u32)> = Vec::new();
    let mut survivors = rel.row_count() as u64;
    for &p in order {
        cost += survivors;
        active.push(p);
        survivors = rel.count_range(&active);
    }
    cost
}

fn plan_order(
    estimator: &dyn SelectivityEstimator,
    predicates: &[(u16, u32, u32)],
) -> Vec<(u16, u32, u32)> {
    let mut order = predicates.to_vec();
    // Classic heuristic: most selective (smallest estimated count) first.
    // The catch: after the first predicate, the *conditional* selectivity
    // of the rest is what matters — which only a correlation-aware
    // synopsis can see. Order by estimated joint count of the prefix.
    let mut result: Vec<(u16, u32, u32)> = Vec::new();
    while !order.is_empty() {
        let (best_idx, _) = order
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let mut trial: Vec<_> = result.clone();
                trial.push(p);
                (i, estimator.estimate(&Query::from(trial)))
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .expect("non-empty");
        result.push(order.remove(best_idx));
    }
    result
}

fn main() {
    let rel = census::census_data_set_1_with(40_000, 11);
    let budget = 3 * 1024;
    let db = SynopsisBuilder::new(&rel).budget(budget).build_mhist().unwrap();
    let ind = IndEstimator::build(&rel, budget, SplitCriterion::MaxDiff).unwrap();

    // Filter: immigrant person whose mother is home-born, middle-aged.
    // `country` and `mother-country` are strongly correlated: given
    // country ∈ 1..112, "mother = home" is rare — far more selective than
    // independence predicts.
    let predicates = [
        (attrs::COUNTRY, 1, 112),      // immigrant
        (attrs::MOTHER_COUNTRY, 0, 0), // home-born mother
        (attrs::AGE, 30, 60),          // middle-aged
    ];

    println!("filter: country in 1..112 AND mother-country = 0 AND age in 30..60");
    let exact = rel.count_range(&predicates);
    println!("matching tuples: {exact}\n");

    for (name, est) in [("DB2", &db as &dyn SelectivityEstimator), ("IND", &ind)] {
        let order = plan_order(est, &predicates);
        let cost = pipeline_cost(&rel, &order);
        let joint = est.estimate(&Query::from(predicates));
        println!(
            "{name:<5} estimated joint count {joint:>9.0} | plan {:?} | pipeline cost {cost}",
            order.iter().map(|&(a, _, _)| a).collect::<Vec<_>>()
        );
    }

    // Best and worst possible orders, for reference.
    let mut best = u64::MAX;
    let mut worst = 0;
    let perms = [[0usize, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
    for p in perms {
        let order: Vec<_> = p.iter().map(|&i| predicates[i]).collect();
        let cost = pipeline_cost(&rel, &order);
        best = best.min(cost);
        worst = worst.max(cost);
    }
    println!("\noptimal pipeline cost {best}, worst {worst}");
}
