//! Approximate query answering: COUNT queries answered from synopses.
//!
//! An OLAP user explores a 12-attribute Census-like table. Instead of
//! scanning 80K+ rows per query, the system answers from a 20 KB synopsis
//! (≈ 0.7% of the data) and reports the estimate next to the exact answer
//! and both of the paper's error metrics, for a DB histogram and the two
//! classic baselines.
//!
//! ```text
//! cargo run --release --example approximate_query
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // binaries/examples: abort on a broken build

use dbhist::core::baselines::{IndEstimator, MhistEstimator};
use dbhist::core::{Query, SelectivityEstimator, SynopsisBuilder};
use dbhist::data::census::{self, attrs};
use dbhist::data::metrics::{multiplicative_error, relative_error};
use dbhist::histogram::SplitCriterion;
use std::time::Instant;

fn main() {
    let rel = census::census_data_set_2_with(40_000, 3);
    let budget = 20 * 1024;

    println!("building synopses ({budget} bytes each)...");
    let t = Instant::now();
    // DB1 (significance-ranked edges) handles this table's wide banded
    // marginals better than DB2's state-space-normalized picks; see
    // EXPERIMENTS.md §Fig.9 for the full comparison and its caveats.
    let db = SynopsisBuilder::new(&rel)
        .budget(budget)
        .heuristic(dbhist::model::selection::EdgeHeuristic::Db1)
        .build_mhist()
        .unwrap();
    println!("  DB1   in {:?} — model {}", t.elapsed(), db.model().notation());
    let t = Instant::now();
    let ind = IndEstimator::build(&rel, budget, SplitCriterion::MaxDiff).unwrap();
    println!("  IND   in {:?}", t.elapsed());
    let t = Instant::now();
    let mhist = MhistEstimator::build(&rel, budget, SplitCriterion::MaxDiff).unwrap();
    println!("  MHIST in {:?}", t.elapsed());

    let estimators: Vec<&dyn SelectivityEstimator> = vec![&db, &ind, &mhist];

    type Predicate = Vec<(u16, u32, u32)>;
    let queries: Vec<(&str, Predicate)> = vec![
        ("full-time workers (hours 35..45)", vec![(attrs::HOURS, 35, 45)]),
        (
            "educated urbanites (education 12.., state 0..7)",
            vec![(attrs::EDUCATION, 12, 16), (attrs::STATE, 0, 7)],
        ),
        (
            "home-born, county 0..30, hours 35..45",
            vec![(attrs::COUNTRY, 0, 0), (attrs::COUNTY, 0, 30), (attrs::HOURS, 35, 45)],
        ),
        (
            "4-D drill-down (age, education, state, hours)",
            vec![
                (attrs::AGE, 25, 55),
                (attrs::EDUCATION, 8, 16),
                (attrs::STATE, 0, 20),
                (attrs::HOURS, 30, 50),
            ],
        ),
    ];

    for (label, ranges) in queries {
        let query = Query::from(ranges);
        let t = Instant::now();
        let exact = rel.count_range(query.ranges()) as f64;
        let scan_time = t.elapsed();
        println!("\nQ: {label}\n   exact {exact:.0} (full scan {scan_time:?})");
        for est in &estimators {
            let t = Instant::now();
            let answer = est.estimate(&query);
            let elapsed = t.elapsed();
            println!(
                "   {:<6} ≈ {answer:>9.0}  rel.err {:.3}  mult.err {:.2}  ({elapsed:?})",
                est.name(),
                relative_error(answer, exact),
                multiplicative_error(answer, exact),
            );
        }
    }
}
